// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//!
//! * `lint` — the *flower-lint* static-analysis pass enforcing
//!   repo-specific determinism, NaN-safety, and panic-freedom invariants
//!   that the stock toolchain cannot express. See `DESIGN.md` § "Static
//!   analysis & determinism invariants". The per-file scan fans out over
//!   [`flower_par::Executor`]; results are collected in path-sorted
//!   submission order, so the output is byte-identical for any worker
//!   count.
//! * `bench` — runs the `bench_nsga2` performance baseline and validates
//!   the emitted `BENCH_nsga2.json` against the expected schema.
//! * `trace` — validates a `flower-trace/v1` JSONL document (written by
//!   `flower run --trace`) against its schema.
//! * `wire` — validates a `flower-record/v1` command recording (written
//!   by `flower serve --record`) against its schema.
//!
//! ```text
//! cargo xtask lint            # human-readable diagnostics
//! cargo xtask lint --json     # machine-readable, for CI
//! cargo xtask lint --rules    # list the enforced invariant classes
//! cargo xtask bench           # full baseline -> BENCH_nsga2.json
//! cargo xtask bench --smoke   # seconds-scale run -> target/BENCH_nsga2.json
//! cargo xtask trace <path>    # schema-validate a recorded episode trace
//! cargo xtask wire <path>     # schema-validate a recorded live session
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.

mod benchjson;
mod flow;
mod lexer;
mod lints;
mod parse;
mod sig;
mod tracejson;
mod types;
mod wirejson;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use flower_par::Executor;
use lints::{analyze, count_by_rule, AllowEntry, FileReport, Violation, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("lint") => {
            let mut json = false;
            let mut list_rules = false;
            let mut tooling = false;
            let mut root = default_root();
            while let Some(arg) = it.next() {
                match arg {
                    "--json" => json = true,
                    "--rules" => list_rules = true,
                    "--tooling" => tooling = true,
                    "--root" => match it.next() {
                        Some(path) => root = PathBuf::from(path),
                        None => {
                            eprintln!("--root requires a path");
                            return usage();
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`");
                        return usage();
                    }
                }
            }
            if list_rules {
                for (name, desc) in RULES {
                    println!("{name:<18} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            run_lint(&root, json, tooling)
        }
        Some("bench") => {
            let mut smoke = false;
            let mut out: Option<String> = None;
            while let Some(arg) = it.next() {
                match arg {
                    "--smoke" => smoke = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.to_owned()),
                        None => {
                            eprintln!("--out requires a path");
                            return usage();
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`");
                        return usage();
                    }
                }
            }
            run_bench(smoke, out.as_deref())
        }
        Some("trace") => {
            let Some(path) = it.next() else {
                eprintln!("trace requires a path to a JSONL document");
                return usage();
            };
            if let Some(other) = it.next() {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
            run_trace(path)
        }
        Some("wire") => {
            let Some(path) = it.next() else {
                eprintln!("wire requires a path to a JSONL document");
                return usage();
            };
            if let Some(other) = it.next() {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
            run_wire(path)
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--json] [--rules] [--tooling] [--root <path>]");
    eprintln!("       cargo xtask bench [--smoke] [--out <path>]");
    eprintln!("       cargo xtask trace <path>");
    eprintln!("       cargo xtask wire <path>");
    ExitCode::from(2)
}

/// Validate a `flower-trace/v1` JSONL document written by
/// `flower run --trace`.
fn run_trace(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match tracejson::validate_trace_jsonl(&text) {
        Ok(summary) => {
            println!("xtask trace: {path} is schema-valid ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask trace: {path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validate a `flower-record/v1` command recording written by
/// `flower serve --record`.
fn run_wire(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match wirejson::validate_record_jsonl(&text) {
        Ok(summary) => {
            println!("xtask wire: {path} is schema-valid ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask wire: {path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run the `bench_nsga2` baseline via cargo and validate the JSON it
/// writes. `--smoke` exists so CI can check the schema in seconds
/// without gating on timings.
fn run_bench(smoke: bool, out: Option<&str>) -> ExitCode {
    let out_path = out.map(str::to_owned).unwrap_or_else(|| {
        if smoke {
            "target/BENCH_nsga2.json".to_owned()
        } else {
            "BENCH_nsga2.json".to_owned()
        }
    });
    let mut cmd =
        std::process::Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()));
    cmd.args([
        "run",
        "--release",
        "-p",
        "flower-bench",
        "--bin",
        "bench_nsga2",
        "--",
    ]);
    if smoke {
        cmd.arg("--smoke");
    }
    cmd.args(["--out", &out_path]);
    match cmd.status() {
        Ok(status) if status.success() => {}
        Ok(status) => {
            eprintln!("bench_nsga2 failed: {status}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("cannot spawn cargo: {e}");
            return ExitCode::from(2);
        }
    }
    let text = match fs::read_to_string(&out_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {out_path}: {e}");
            return ExitCode::from(2);
        }
    };
    match benchjson::validate_bench_json(&text) {
        Ok(summary) => {
            // The first summary line is the shape; any further lines
            // are directional warnings — surface them on their own
            // lines so an inverted comparison is visible in CI logs.
            let mut lines = summary.lines();
            let shape = lines.next().unwrap_or_default();
            println!("xtask bench: {out_path} is schema-valid ({shape})");
            for warning in lines {
                println!("xtask bench: {warning}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask bench: {out_path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: the ancestor of this binary's manifest dir, or cwd.
fn default_root() -> PathBuf {
    let manifest = std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from);
    manifest
        .and_then(|m| m.parent().and_then(Path::parent).map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(root: &Path, json: bool, tooling: bool) -> ExitCode {
    let crates_dir = root.join("crates");
    let mut files: Vec<(String, PathBuf)> = Vec::new(); // (crate name, file)
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_rs_files(&src, &name, &mut files);
    }
    files.sort();

    let exec = Executor::from_env();

    // Phase 1: build the workspace signature index from *every* crate,
    // in parallel. `par_map` returns results in path-sorted submission
    // order, and `sig::merge` folds them sequentially in that order, so
    // the index is byte-identical at any FLOWER_THREADS.
    let sig_results: Vec<Result<sig::FileSigs, String>> =
        exec.par_map(&files, |_, (crate_name, path)| {
            let source = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let taint_eligible = lints::profile_for(crate_name) == lints::Profile::DeterministicLib;
            Ok(lints::collect_signatures(&source, taint_eligible))
        });
    let mut file_sigs = Vec::with_capacity(sig_results.len());
    for r in sig_results {
        match r {
            Ok(fs) => file_sigs.push(fs),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    let index = sig::merge(&file_sigs);

    // Phase 2: rule scan. The default pass covers the library crates;
    // `--tooling` self-lints crates/xtask with the typed rules only.
    let scan_files: Vec<(String, PathBuf)> = if tooling {
        files
            .iter()
            .filter(|(c, _)| c == "xtask")
            .cloned()
            .collect()
    } else {
        files
    };
    let reports: Vec<Result<FileReport, String>> =
        exec.par_map(&scan_files, |_, (crate_name, path)| {
            let source = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .into_owned();
            if tooling {
                Ok(lints::analyze_with_profile(
                    &rel,
                    lints::Profile::Tooling,
                    &source,
                    &index,
                ))
            } else {
                Ok(analyze(&rel, crate_name, &source, &index))
            }
        });

    let mut violations: Vec<Violation> = Vec::new();
    let mut allows: Vec<AllowEntry> = Vec::new();
    let mut scanned = 0usize;
    for report in reports {
        match report {
            Ok(report) => {
                violations.extend(report.violations);
                allows.extend(report.allows_used);
                scanned += 1;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    if json {
        print_json(&violations, &allows, scanned);
    } else {
        print_human(&violations, &allows, scanned);
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, crate_name: &str, out: &mut Vec<(String, PathBuf)>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, crate_name, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((crate_name.to_owned(), path));
        }
    }
}

fn print_human(violations: &[Violation], allows: &[AllowEntry], scanned: usize) {
    for v in violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    let counts = count_by_rule(violations);
    if !counts.is_empty() {
        println!();
        for (rule, n) in &counts {
            println!("  {n:>4}  {rule}");
        }
    }
    println!(
        "flower-lint: {} violation(s) across {} file(s); {} justified suppression(s)",
        violations.len(),
        scanned,
        allows.len()
    );
}

fn print_json(violations: &[Violation], allows: &[AllowEntry], scanned: usize) {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(v.rule),
            json_str(&v.file),
            v.line,
            json_str(&v.message)
        ));
    }
    s.push_str("\n  ],\n  \"allows\": [");
    for (i, a) in allows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
            json_str(&a.rule),
            json_str(&a.file),
            a.line,
            json_str(&a.justification)
        ));
    }
    s.push_str("\n  ],\n  \"summary\": {");
    s.push_str(&format!(
        "\"files_scanned\": {scanned}, \"total\": {}, \"by_rule\": {{",
        violations.len()
    ));
    let counts = count_by_rule(violations);
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {n}", json_str(rule)));
    }
    s.push_str("}}\n}");
    println!("{s}");
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_round_trips_specials() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    /// Lex + parse every `.rs` file in the workspace: the parser must
    /// consume each file with zero recoveries (total grammar coverage
    /// of our own code), and token/item counts must be identical
    /// across two independent passes — the determinism pin for the
    /// whole front end.
    #[test]
    fn workspace_lexes_and_parses_without_recovery() {
        let root = default_root();
        let mut files: Vec<(String, PathBuf)> = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .expect("workspace crates/ dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                collect_rs_files(&src, &name, &mut files);
            }
        }
        assert!(
            files.len() >= 80,
            "workspace walker found {} files",
            files.len()
        );
        let mut total_tokens = 0usize;
        let mut total_items = 0usize;
        for (_, path) in &files {
            let src = fs::read_to_string(path).expect("readable source");
            let (tokens, _) = crate::lexer::lex(&src);
            let ast = crate::parse::parse_tokens(&tokens);
            assert_eq!(
                ast.recovered,
                0,
                "{}: parser recovered {} time(s)",
                path.display(),
                ast.recovered
            );
            assert_eq!(
                ast.tokens,
                tokens.len(),
                "{}: token count drift",
                path.display()
            );
            // Second pass must agree exactly: lexing and parsing are
            // pure functions of the source text.
            let (tokens2, _) = crate::lexer::lex(&src);
            let ast2 = crate::parse::parse_tokens(&tokens2);
            assert_eq!(tokens.len(), tokens2.len(), "{}", path.display());
            assert_eq!(ast.item_count(), ast2.item_count(), "{}", path.display());
            total_tokens += tokens.len();
            total_items += ast.item_count();
        }
        assert!(
            total_tokens > 100_000,
            "implausibly few tokens: {total_tokens}"
        );
        assert!(total_items > 500, "implausibly few items: {total_items}");
    }

    #[test]
    fn json_report_is_well_formed_ish() {
        // Smoke-check bracket balance on a non-empty report.
        let violations = vec![Violation {
            rule: "panic-unwrap",
            file: "crates/core/src/x.rs".into(),
            line: 3,
            message: "`.unwrap()` in library code".into(),
        }];
        let allows = [AllowEntry {
            rule: "hash-iteration".into(),
            file: "crates/sim/src/y.rs".into(),
            line: 9,
            justification: "membership-only".into(),
        }];
        // print_json writes to stdout; re-build the string the same way
        // to validate shape.
        let counts = count_by_rule(&violations);
        assert_eq!(counts.get("panic-unwrap"), Some(&1));
        assert_eq!(allows.len(), 1);
    }
}
