//! A lightweight recursive-descent parser over the [`crate::lexer`]
//! token stream.
//!
//! `flower-lint`'s typed rules need more than token patterns: binding
//! types, expression structure, and dataflow. A full Rust grammar (or a
//! vendored `syn`) is unavailable offline, so this parser covers the
//! subset the rules require — items (`fn` / `struct` / `enum` / `const`
//! / `impl` / `mod` / `trait`), `let` statements with patterns and type
//! annotations, and a Pratt expression grammar with calls, method
//! chains, field access, closures, control flow, and struct literals —
//! and is **total**: anything outside the subset is consumed as a
//! balanced [`Expr::Opaque`] group and counted in
//! [`Ast::recovered`], never a parse abort. The workspace regression
//! test pins `recovered == 0` over every `.rs` file in the repo, so the
//! subset provably covers the codebase the rules police.

// The AST is a complete grammar surface: some fields (line anchors,
// pattern names, coverage counters) are consumed only by specific rule
// passes or the test suite, and the bin target alone cannot see that.
#![allow(dead_code)]

use crate::lexer::{lex, TokKind, Token};

/// A simplified type reference, canonicalised enough for the rules:
/// references are transparent for float-ness, generic arguments are
/// kept for `Vec<f64>` / `Option<f64>` element extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// Named type: last path segment plus generic arguments
    /// (`Vec<f64>` → `Path { name: "Vec", args: [f64] }`).
    Path {
        /// Final path segment (`std::time::Duration` → `Duration`).
        name: String,
        /// Generic type arguments, lifetimes elided.
        args: Vec<TypeRef>,
    },
    /// `&T` / `&mut T` / `*const T` — referenceness is transparent to
    /// the float rules.
    Ref(Box<TypeRef>),
    /// `[T]` / `[T; N]` slice or array.
    Slice(Box<TypeRef>),
    /// `(A, B, ...)`; `()` is the empty tuple.
    Tuple(Vec<TypeRef>),
    /// Function pointer / `Fn` trait object — opaque to the rules.
    FnLike,
    /// Anything the simplified grammar cannot name.
    Unknown,
}

impl TypeRef {
    /// Construct a no-argument named type.
    pub fn named(name: &str) -> TypeRef {
        TypeRef::Path {
            name: name.to_owned(),
            args: Vec::new(),
        }
    }

    /// Strip references: `&&mut f64` → `f64`.
    pub fn deref(&self) -> &TypeRef {
        match self {
            TypeRef::Ref(inner) => inner.deref(),
            other => other,
        }
    }

    /// Is this `f64` / `f32` (through any number of references)?
    pub fn is_float(&self) -> bool {
        matches!(self.deref(), TypeRef::Path { name, .. } if name == "f64" || name == "f32")
    }

    /// Short display name for diagnostics (`Vec<f64>`, `&f64`).
    pub fn display(&self) -> String {
        match self {
            TypeRef::Path { name, args } => {
                if args.is_empty() {
                    name.clone()
                } else {
                    let inner: Vec<String> = args.iter().map(TypeRef::display).collect();
                    format!("{name}<{}>", inner.join(", "))
                }
            }
            TypeRef::Ref(inner) => format!("&{}", inner.display()),
            TypeRef::Slice(inner) => format!("[{}]", inner.display()),
            TypeRef::Tuple(parts) => {
                let inner: Vec<String> = parts.iter().map(TypeRef::display).collect();
                format!("({})", inner.join(", "))
            }
            TypeRef::FnLike => "fn(..)".to_owned(),
            TypeRef::Unknown => "_".to_owned(),
        }
    }
}

/// A literal's coarse classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// Integer literal (any base / suffix).
    Int,
    /// Float literal; `is_f32` when suffixed `f32`.
    Float,
    /// String-ish literal.
    Str,
    /// Char / byte literal.
    Char,
    /// `true` / `false`.
    Bool,
}

/// Expression tree. Every variant that can anchor a diagnostic carries
/// its 1-indexed source line.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `a` or `a::b::c` (turbofish segments elided).
    Path { segs: Vec<String>, line: u32 },
    /// Literal token.
    Lit {
        kind: LitKind,
        text: String,
        line: u32,
    },
    /// `callee(args...)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    /// `recv.name(args...)`; `turbofish` keeps `::<T>` when present.
    Method {
        recv: Box<Expr>,
        name: String,
        turbofish: Option<TypeRef>,
        args: Vec<Expr>,
        line: u32,
    },
    /// `base.name` (named or tuple-index field).
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    /// `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    /// Binary operator application.
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// Prefix `-` / `!` / `*` / `&`.
    Unary { op: char, inner: Box<Expr> },
    /// `lhs = rhs` or compound `lhs += rhs`.
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `inner as ty`.
    Cast {
        inner: Box<Expr>,
        ty: TypeRef,
        line: u32,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        params: Vec<(String, Option<TypeRef>)>,
        body: Box<Expr>,
        line: u32,
    },
    /// `if cond { then } else alt` (alt is a Block or another If).
    If {
        cond: Box<Expr>,
        then: Block,
        alt: Option<Box<Expr>>,
    },
    /// `match scrutinee { pat => body, ... }`; each arm keeps the
    /// binding names its pattern introduces.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<(Vec<String>, Expr)>,
    },
    /// `for pat in iter { body }`.
    For {
        vars: Vec<String>,
        iter: Box<Expr>,
        body: Block,
    },
    /// `while cond { body }` (incl. `while let`).
    While { cond: Box<Expr>, body: Block },
    /// `loop { body }`.
    Loop { body: Block },
    /// Block expression.
    Block(Block),
    /// `return value?` / `break value?`.
    Return { value: Option<Box<Expr>>, line: u32 },
    /// `Path { field: expr, ..rest }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        rest: Option<Box<Expr>>,
        line: u32,
    },
    /// `(a, b, ...)`.
    Tuple { items: Vec<Expr>, line: u32 },
    /// `[a, b]` / `[x; n]`.
    Array { items: Vec<Expr>, line: u32 },
    /// `name!(args)` — arguments parsed best-effort as expressions.
    Macro {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `lo..hi` / `lo..=hi` with optional ends.
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    /// `inner?`.
    Try { inner: Box<Expr> },
    /// `if let` / `while let` binding condition: names bound by the
    /// pattern plus the matched expression.
    LetCond {
        names: Vec<String>,
        value: Box<Expr>,
    },
    /// Tokens outside the grammar, consumed balanced. Counted in
    /// [`Ast::recovered`] unless inside a macro body.
    Opaque { line: u32 },
}

impl Expr {
    /// The 1-indexed line anchoring this expression (best effort).
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Return { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Opaque { line } => *line,
            Expr::Unary { inner, .. } | Expr::Try { inner } => inner.line(),
            Expr::If { cond, .. } | Expr::While { cond, .. } => cond.line(),
            Expr::Match { scrutinee, .. } => scrutinee.line(),
            Expr::For { iter, .. } => iter.line(),
            Expr::Loop { body } | Expr::Block(body) => body.line,
            Expr::LetCond { value, .. } => value.line(),
            Expr::Range { lo, hi } => lo.as_deref().or(hi.as_deref()).map_or(0, Expr::line),
        }
    }
}

/// `{ ... }` statement sequence.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Line of the opening brace.
    pub line: u32,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let` binding. `name` is set for a plain-identifier pattern;
    /// `names` lists every identifier the pattern binds (incl. `name`).
    Let {
        name: Option<String>,
        names: Vec<String>,
        ty: Option<TypeRef>,
        init: Option<Expr>,
        line: u32,
    },
    /// Expression statement.
    Expr(Expr),
    /// Nested item (fn, const, ...).
    Item(Box<Item>),
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers).
    pub name: String,
    /// Declared type; `Unknown` for `self` receivers until the impl
    /// context resolves them.
    pub ty: TypeRef,
}

/// A `fn` definition (free, method, or trait default).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Declared return type, if any.
    pub ret: Option<TypeRef>,
    /// Body; `None` for trait method declarations.
    pub body: Option<Block>,
    /// Carries `#[test]` or lives under `#[cfg(test)]`.
    pub is_test: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// A `struct` definition with named fields (tuple structs keep
/// numeric field names `"0"`, `"1"`, ...).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// `(field, type)` pairs.
    pub fields: Vec<(String, TypeRef)>,
    /// Line of the `struct` keyword.
    pub line: u32,
}

/// A `const` / `static` item.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Item name.
    pub name: String,
    /// Declared type.
    pub ty: TypeRef,
    /// Initialiser, when in the parsed subset.
    pub init: Option<Expr>,
    /// Line of the keyword.
    pub line: u32,
}

/// Top-level (or nested) item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `fn` definition.
    Fn(FnDef),
    /// `struct` definition.
    Struct(StructDef),
    /// `enum` (name only — the rules never need variants).
    Enum { name: String },
    /// `const` / `static`.
    Const(ConstDef),
    /// `impl SelfTy { items }` / `impl Trait for SelfTy { items }`.
    Impl {
        /// Last path segment of the implementing type.
        self_ty: String,
        /// Methods / consts inside.
        items: Vec<Item>,
        /// Whole block under `#[cfg(test)]`.
        is_test: bool,
    },
    /// `mod name { items }`.
    Mod {
        name: String,
        items: Vec<Item>,
        /// `#[cfg(test)] mod tests`.
        is_test: bool,
    },
    /// `trait Name { items }` (default method bodies kept).
    Trait { name: String, items: Vec<Item> },
    /// `use` / `type` / `extern` / macros — no analysis payload.
    Other,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Items in source order.
    pub items: Vec<Item>,
    /// Number of fallback recoveries (token runs outside the grammar).
    /// Zero across the workspace by regression test.
    pub recovered: u32,
    /// Total tokens consumed (for the determinism pin).
    pub tokens: usize,
}

impl Ast {
    /// Count items of every kind, recursively (for the determinism pin).
    pub fn item_count(&self) -> usize {
        fn count(items: &[Item]) -> usize {
            items
                .iter()
                .map(|i| match i {
                    Item::Impl { items, .. }
                    | Item::Mod { items, .. }
                    | Item::Trait { items, .. } => 1 + count(items),
                    _ => 1,
                })
                .sum()
        }
        count(&self.items)
    }
}

/// Lex and parse a source file. Never fails; see [`Ast::recovered`].
pub fn parse_source(src: &str) -> Ast {
    let (tokens, _comments) = lex(src);
    parse_tokens(&tokens)
}

/// Parse a pre-lexed token stream.
pub fn parse_tokens(tokens: &[Token]) -> Ast {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        recovered: 0,
        angle_debt: 0,
        in_macro: 0,
    };
    let items = p.parse_items(false);
    Ast {
        items,
        recovered: p.recovered,
        tokens: tokens.len(),
    }
}

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await", "box",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    recovered: u32,
    /// Set when a `>>` token was consumed as a single `>` closing an
    /// outer generic list — the next angle close is already paid for.
    angle_debt: u8,
    /// Depth of macro-argument parsing; recoveries inside macro bodies
    /// are expected (patterns, format strings) and not counted.
    in_macro: u32,
}

impl<'a> Parser<'a> {
    // ---- token cursor ------------------------------------------------

    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead)
    }

    fn text(&self, ahead: usize) -> &'a str {
        self.peek(ahead).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, ahead: usize) -> Option<&TokKind> {
        self.peek(ahead).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.text(0) == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn recover(&mut self) {
        if self.in_macro == 0 {
            self.recovered += 1;
        }
    }

    /// Skip one balanced token group: a bracketed group in full, or a
    /// single token otherwise.
    fn skip_group(&mut self) {
        match self.text(0) {
            "(" => self.skip_balanced("(", ")"),
            "[" => self.skip_balanced("[", "]"),
            "{" => self.skip_balanced("{", "}"),
            // Never consume a lone closing delimiter: it belongs to the
            // enclosing group, and stealing it desyncs the caller.
            ")" | "]" | "}" => {}
            _ => {
                self.bump();
            }
        }
    }

    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skip tokens until one of `stops` at bracket depth 0 (the stop
    /// token is not consumed).
    fn skip_until(&mut self, stops: &[&str]) {
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            let tx = t.text.as_str();
            if depth == 0 && stops.contains(&tx) {
                return;
            }
            match tx {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    // ---- attributes --------------------------------------------------

    /// Skip `#[...]` / `#![...]` attributes; report whether any marks
    /// test code (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`).
    fn parse_attrs(&mut self) -> bool {
        let mut is_test = false;
        while self.text(0) == "#" {
            let inner_start = if self.text(1) == "!" { 2 } else { 1 };
            if self.text(inner_start) != "[" {
                break;
            }
            // Inspect the bracketed tokens before skipping them.
            let words: Vec<&str> = self.toks[self.pos + inner_start + 1..]
                .iter()
                .take_while(|t| t.text != "]")
                .map(|t| t.text.as_str())
                .collect();
            match words.as_slice() {
                ["test", ..] => is_test = true,
                ["cfg", "(", "test", ")"] => is_test = true,
                ["cfg", "(", "all", "(", "test", rest @ ..] if !rest.is_empty() => is_test = true,
                _ => {}
            }
            for _ in 0..inner_start {
                self.bump();
            }
            self.skip_balanced("[", "]");
        }
        is_test
    }

    // ---- items -------------------------------------------------------

    fn parse_items(&mut self, inside_block: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_end() || (inside_block && self.text(0) == "}") {
                return items;
            }
            items.push(self.parse_item());
        }
    }

    fn parse_item(&mut self) -> Item {
        let is_test = self.parse_attrs();
        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if self.eat("pub") && self.text(0) == "(" {
            self.skip_balanced("(", ")");
        }
        // Leading qualifiers.
        while matches!(self.text(0), "unsafe" | "async" | "default") {
            self.bump();
        }
        if self.text(0) == "extern" && self.kind(1) == Some(&TokKind::Str) {
            self.bump();
            self.bump();
        }
        match self.text(0) {
            "fn" => Item::Fn(self.parse_fn(is_test)),
            "struct" => self.parse_struct(),
            "enum" => self.parse_enum(),
            "union" => self.parse_enum(),
            "const" | "static" => self.parse_const(),
            "impl" => self.parse_impl(is_test),
            "mod" => self.parse_mod(is_test),
            "trait" => self.parse_trait(),
            "use" | "extern" => {
                self.skip_until(&[";"]);
                self.eat(";");
                Item::Other
            }
            "type" => {
                self.skip_until(&[";"]);
                self.eat(";");
                Item::Other
            }
            "macro_rules" => {
                // macro_rules ! name { ... }
                self.bump();
                self.eat("!");
                self.bump(); // name
                self.skip_group();
                Item::Other
            }
            _ => {
                // Not an item starter: recover by skipping one balanced
                // group so progress is guaranteed.
                self.recover();
                self.skip_group();
                Item::Other
            }
        }
    }

    fn parse_fn(&mut self, is_test: bool) -> FnDef {
        let line = self.line();
        self.eat("fn");
        let name = self.bump().map_or(String::new(), |t| t.text.clone());
        if self.text(0) == "<" {
            self.skip_generics();
        }
        let params = self.parse_params();
        let ret = if self.eat("->") {
            Some(self.parse_type())
        } else {
            None
        };
        if self.text(0) == "where" {
            self.skip_until(&["{", ";"]);
        }
        let body = if self.text(0) == "{" {
            Some(self.parse_block())
        } else {
            self.eat(";");
            None
        };
        FnDef {
            name,
            params,
            ret,
            body,
            is_test,
            line,
        }
    }

    /// Skip a `<...>` generic parameter list, honouring nested angles,
    /// `>>` double closes, and brace/paren groups (const generics,
    /// `Fn(..) -> R` bounds).
    fn skip_generics(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                "(" => {
                    self.skip_balanced("(", ")");
                    continue;
                }
                "{" => {
                    self.skip_balanced("{", "}");
                    continue;
                }
                "->" | "=>" => {}
                _ => {}
            }
            self.bump();
        }
    }

    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        if !self.eat("(") {
            return params;
        }
        loop {
            if self.eat(")") || self.at_end() {
                return params;
            }
            self.parse_attrs();
            // Receiver forms: self / &self / &mut self / mut self /
            // &'a self / self: Type.
            let mut k = 0usize;
            while matches!(self.text(k), "&" | "&&" | "mut")
                || self.kind(k) == Some(&TokKind::Lifetime)
            {
                k += 1;
            }
            if self.text(k) == "self" {
                for _ in 0..=k {
                    self.bump();
                }
                if self.eat(":") {
                    let _ = self.parse_type();
                }
                params.push(Param {
                    name: "self".to_owned(),
                    ty: TypeRef::named("Self"),
                });
            } else {
                // Pattern (usually an ident, sometimes `mut x`, `_`,
                // or a destructuring pattern) then `: Type`.
                let names = self.parse_pattern_names(&[":", ",", ")"]);
                let ty = if self.eat(":") {
                    self.parse_type()
                } else {
                    TypeRef::Unknown
                };
                let name = match names.as_slice() {
                    [single] => single.clone(),
                    _ => String::new(),
                };
                if !name.is_empty() || !names.is_empty() {
                    // Multi-name patterns get one param per bound name
                    // with the tuple type left Unknown per element.
                    if names.len() == 1 {
                        params.push(Param { name, ty });
                    } else {
                        for n in names {
                            params.push(Param {
                                name: n,
                                ty: TypeRef::Unknown,
                            });
                        }
                    }
                } else if name.is_empty() && names.is_empty() {
                    // `_: T` placeholder — keep arity with a blank name.
                    params.push(Param {
                        name: String::new(),
                        ty,
                    });
                }
            }
            if !self.eat(",") && self.text(0) != ")" {
                // Unparsed parameter tail; skip to the next boundary.
                self.recover();
                self.skip_until(&[",", ")"]);
                self.eat(",");
            }
        }
    }

    /// Collect the identifiers a pattern binds, consuming tokens until
    /// one of `stops` at depth 0. Heuristic: a lowercase-start
    /// identifier not followed by `::` / `(` / `:` / `!` and not a
    /// keyword is a binding.
    fn parse_pattern_names(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            let tx = t.text.as_str();
            if depth == 0 && stops.contains(&tx) {
                return names;
            }
            match tx {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return names;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            // An ident directly followed by a depth-0 stopping `:` is
            // the pattern root with a type annotation (`a: f64` in
            // params / closures), not a struct-pattern field label.
            let colon_is_stop = depth == 0 && stops.contains(&":") && self.text(1) == ":";
            if t.kind == TokKind::Ident
                && !KEYWORDS.contains(&tx)
                && tx
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                && tx != "_"
                && (colon_is_stop || !matches!(self.text(1), "::" | "(" | ":" | "!"))
            {
                names.push(tx.to_owned());
            }
            // Struct-pattern field shorthand `P { x }` still binds `x`;
            // `P { x: y }` binds `y` (x is skipped by the `:` lookahead
            // above).
            self.bump();
        }
        names
    }

    fn parse_struct(&mut self) -> Item {
        let line = self.line();
        self.eat("struct");
        let name = self.bump().map_or(String::new(), |t| t.text.clone());
        if self.text(0) == "<" {
            self.skip_generics();
        }
        let mut fields = Vec::new();
        if self.text(0) == "where" {
            self.skip_until(&["{", "(", ";"]);
        }
        match self.text(0) {
            "{" => {
                self.bump();
                loop {
                    if self.eat("}") || self.at_end() {
                        break;
                    }
                    self.parse_attrs();
                    if self.eat("pub") && self.text(0) == "(" {
                        self.skip_balanced("(", ")");
                    }
                    let Some(fname) = self.bump().map(|t| t.text.clone()) else {
                        break;
                    };
                    if !self.eat(":") {
                        self.skip_until(&[",", "}"]);
                        self.eat(",");
                        continue;
                    }
                    let ty = self.parse_type();
                    fields.push((fname, ty));
                    self.eat(",");
                }
            }
            "(" => {
                self.bump();
                let mut idx = 0usize;
                loop {
                    if self.eat(")") || self.at_end() {
                        break;
                    }
                    self.parse_attrs();
                    if self.eat("pub") && self.text(0) == "(" {
                        self.skip_balanced("(", ")");
                    }
                    let ty = self.parse_type();
                    fields.push((idx.to_string(), ty));
                    idx += 1;
                    self.eat(",");
                }
                self.eat(";");
            }
            _ => {
                self.eat(";");
            }
        }
        Item::Struct(StructDef { name, fields, line })
    }

    fn parse_enum(&mut self) -> Item {
        self.bump(); // enum / union
        let name = self.bump().map_or(String::new(), |t| t.text.clone());
        if self.text(0) == "<" {
            self.skip_generics();
        }
        if self.text(0) == "where" {
            self.skip_until(&["{", ";"]);
        }
        if self.text(0) == "{" {
            self.skip_group();
        } else {
            self.eat(";");
        }
        Item::Enum { name }
    }

    fn parse_const(&mut self) -> Item {
        let line = self.line();
        self.bump(); // const / static
        self.eat("mut");
        if self.text(0) == "fn" {
            // `const fn` — reparse as a function.
            return Item::Fn(self.parse_fn(false));
        }
        let name = self.bump().map_or(String::new(), |t| t.text.clone());
        let ty = if self.eat(":") {
            self.parse_type()
        } else {
            TypeRef::Unknown
        };
        let init = if self.eat("=") {
            Some(self.parse_expr())
        } else {
            None
        };
        self.eat(";");
        Item::Const(ConstDef {
            name,
            ty,
            init,
            line,
        })
    }

    fn parse_impl(&mut self, is_test: bool) -> Item {
        self.eat("impl");
        if self.text(0) == "<" {
            self.skip_generics();
        }
        let first = self.parse_type();
        let self_ty = if self.eat("for") {
            self.parse_type()
        } else {
            first
        };
        if self.text(0) == "where" {
            self.skip_until(&["{"]);
        }
        let name = match self_ty.deref() {
            TypeRef::Path { name, .. } => name.clone(),
            _ => String::new(),
        };
        let mut items = Vec::new();
        if self.eat("{") {
            loop {
                if self.eat("}") || self.at_end() {
                    break;
                }
                items.push(self.parse_item());
            }
        }
        Item::Impl {
            self_ty: name,
            items,
            is_test,
        }
    }

    fn parse_mod(&mut self, is_test: bool) -> Item {
        self.eat("mod");
        let name = self.bump().map_or(String::new(), |t| t.text.clone());
        let mut items = Vec::new();
        if self.eat("{") {
            items = self.parse_items(true);
            self.eat("}");
        } else {
            self.eat(";");
        }
        Item::Mod {
            name,
            items,
            is_test,
        }
    }

    fn parse_trait(&mut self) -> Item {
        self.eat("trait");
        let name = self.bump().map_or(String::new(), |t| t.text.clone());
        if self.text(0) == "<" {
            self.skip_generics();
        }
        if self.text(0) == ":" {
            self.skip_until(&["{", "where"]);
        }
        if self.text(0) == "where" {
            self.skip_until(&["{"]);
        }
        let mut items = Vec::new();
        if self.eat("{") {
            loop {
                if self.eat("}") || self.at_end() {
                    break;
                }
                items.push(self.parse_item());
            }
        }
        Item::Trait { name, items }
    }

    // ---- types -------------------------------------------------------

    fn parse_type(&mut self) -> TypeRef {
        match self.text(0) {
            "&" => {
                self.bump();
                if self.kind(0) == Some(&TokKind::Lifetime) {
                    self.bump();
                }
                self.eat("mut");
                TypeRef::Ref(Box::new(self.parse_type()))
            }
            "&&" => {
                self.bump();
                if self.kind(0) == Some(&TokKind::Lifetime) {
                    self.bump();
                }
                self.eat("mut");
                TypeRef::Ref(Box::new(TypeRef::Ref(Box::new(self.parse_type()))))
            }
            "*" => {
                self.bump();
                let _ = self.eat("const") || self.eat("mut");
                TypeRef::Ref(Box::new(self.parse_type()))
            }
            "[" => {
                self.bump();
                let elem = self.parse_type();
                if self.eat(";") {
                    self.skip_until(&["]"]);
                }
                self.eat("]");
                TypeRef::Slice(Box::new(elem))
            }
            "(" => {
                self.bump();
                let mut parts = Vec::new();
                loop {
                    if self.eat(")") || self.at_end() {
                        break;
                    }
                    parts.push(self.parse_type());
                    if !self.eat(",") && self.text(0) != ")" {
                        self.skip_until(&[",", ")"]);
                        self.eat(",");
                    }
                }
                if parts.len() == 1 {
                    parts.remove(0)
                } else {
                    TypeRef::Tuple(parts)
                }
            }
            "dyn" | "impl" => {
                self.bump();
                let first = self.parse_type();
                // Additional `+ Bound`s are opaque.
                while self.eat("+") {
                    if self.kind(0) == Some(&TokKind::Lifetime) {
                        self.bump();
                    } else {
                        let _ = self.parse_type();
                    }
                }
                first
            }
            "fn" => {
                self.bump();
                if self.text(0) == "(" {
                    self.skip_balanced("(", ")");
                }
                if self.eat("->") {
                    let _ = self.parse_type();
                }
                TypeRef::FnLike
            }
            "!" => {
                self.bump();
                TypeRef::named("!")
            }
            "_" => {
                self.bump();
                TypeRef::Unknown
            }
            "<" => {
                // Qualified path `<T as Trait>::Assoc` — opaque.
                self.skip_generics();
                while self.eat("::") {
                    self.bump();
                }
                TypeRef::Unknown
            }
            _ => self.parse_type_path(),
        }
    }

    fn parse_type_path(&mut self) -> TypeRef {
        let mut name = String::new();
        let mut args = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.kind != TokKind::Ident {
                break;
            }
            name = t.text.clone();
            self.bump();
            // `Fn(..) -> R`-style trait sugar.
            if matches!(name.as_str(), "Fn" | "FnMut" | "FnOnce") && self.text(0) == "(" {
                self.skip_balanced("(", ")");
                if self.eat("->") {
                    let _ = self.parse_type();
                }
                return TypeRef::FnLike;
            }
            if self.text(0) == "<" || (self.text(0) == "::" && self.text(1) == "<") {
                self.eat("::");
                args = self.parse_generic_args();
            }
            if self.text(0) == "::" && self.kind(1) == Some(&TokKind::Ident) {
                self.bump();
                args.clear();
                continue;
            }
            break;
        }
        if name.is_empty() {
            self.recover();
            self.bump();
            return TypeRef::Unknown;
        }
        TypeRef::Path { name, args }
    }

    /// Parse `<...>` generic arguments, splitting `>>` when it closes
    /// both this list and an enclosing one.
    fn parse_generic_args(&mut self) -> Vec<TypeRef> {
        let mut args = Vec::new();
        if self.angle_debt > 0 {
            // An outer `>>` already closed this list.
            self.angle_debt -= 1;
            return args;
        }
        if !self.eat("<") {
            return args;
        }
        loop {
            if self.at_end() {
                return args;
            }
            if self.eat(">") {
                return args;
            }
            if self.text(0) == ">>" {
                // Closes this list and the enclosing one.
                self.bump();
                self.angle_debt += 1;
                return args;
            }
            if self.kind(0) == Some(&TokKind::Lifetime) {
                self.bump();
            } else if self.kind(0) == Some(&TokKind::Int)
                || self.text(0) == "true"
                || self.text(0) == "false"
            {
                // Const generic argument.
                self.bump();
            } else if self.kind(0) == Some(&TokKind::Ident) && self.text(1) == "=" {
                // Associated type binding `Item = T`.
                self.bump();
                self.bump();
                let _ = self.parse_type();
            } else if self.text(0) == "{" {
                // Const generic block expression.
                self.skip_group();
            } else {
                let ty = self.parse_type();
                args.push(ty);
                if self.angle_debt > 0 {
                    // The nested type consumed our closing `>` via `>>`.
                    self.angle_debt -= 1;
                    return args;
                }
            }
            if !self.eat(",") && !matches!(self.text(0), ">" | ">>") {
                // Bounds (`T: Trait + 'a`) and other unparsed forms.
                self.skip_until(&[",", ">", ">>", "(", ")"]);
                if self.text(0) == "(" {
                    self.skip_balanced("(", ")");
                }
                self.eat(",");
            }
        }
    }

    // ---- statements --------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let line = self.line();
        let mut stmts = Vec::new();
        if !self.eat("{") {
            return Block { stmts, line };
        }
        loop {
            if self.eat("}") || self.at_end() {
                return Block { stmts, line };
            }
            if self.eat(";") {
                continue;
            }
            let is_test = if self.text(0) == "#" {
                self.parse_attrs()
            } else {
                false
            };
            match self.text(0) {
                "let" => stmts.push(self.parse_let()),
                "fn" | "struct" | "enum" | "const" | "static" | "impl" | "trait" | "use"
                | "mod" | "type" | "macro_rules" => {
                    stmts.push(Stmt::Item(Box::new(self.parse_item())));
                }
                "pub" => {
                    stmts.push(Stmt::Item(Box::new(self.parse_item())));
                }
                "unsafe" if matches!(self.text(1), "fn" | "impl" | "trait") => {
                    stmts.push(Stmt::Item(Box::new(self.parse_item())));
                }
                _ => {
                    let _ = is_test;
                    let before = self.pos;
                    let e = self.parse_expr();
                    self.eat(";");
                    stmts.push(Stmt::Expr(e));
                    if self.pos == before {
                        // Stray closer (`)` / `]`) the opaque fallback
                        // refused to steal: drop it to guarantee progress.
                        self.bump();
                    }
                }
            }
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.eat("let");
        // Plain `let [mut] name` fast path keeps the name for typing.
        let names;
        let name;
        {
            let mut k = 0usize;
            if self.text(k) == "mut" {
                k += 1;
            }
            let plain = self.kind(k) == Some(&TokKind::Ident)
                && !KEYWORDS.contains(&self.text(k))
                && matches!(self.text(k + 1), ":" | "=" | ";");
            if plain {
                for _ in 0..k {
                    self.bump();
                }
                let n = self.bump().map_or(String::new(), |t| t.text.clone());
                names = vec![n.clone()];
                name = Some(n);
            } else {
                names = self.parse_pattern_names(&[":", "=", ";"]);
                name = None;
            }
        }
        let ty = if self.eat(":") {
            Some(self.parse_type())
        } else {
            None
        };
        let init = if self.eat("=") {
            Some(self.parse_expr())
        } else {
            None
        };
        // `let ... else { ... }`
        if self.text(0) == "else" {
            self.bump();
            if self.text(0) == "{" {
                self.skip_group();
            }
        }
        self.eat(";");
        Stmt::Let {
            name,
            names,
            ty,
            init,
            line,
        }
    }

    // ---- expressions -------------------------------------------------

    fn parse_expr(&mut self) -> Expr {
        self.parse_expr_inner(true)
    }

    fn parse_expr_no_struct(&mut self) -> Expr {
        self.parse_expr_inner(false)
    }

    fn parse_expr_inner(&mut self, structs: bool) -> Expr {
        self.parse_assign(structs)
    }

    fn parse_assign(&mut self, structs: bool) -> Expr {
        let lhs = self.parse_range(structs);
        let op = self.text(0);
        if op == "="
            || matches!(
                op,
                "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
            )
        {
            let line = self.line();
            self.bump();
            let rhs = self.parse_assign(structs);
            return Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    fn parse_range(&mut self, structs: bool) -> Expr {
        if matches!(self.text(0), ".." | "..=") {
            self.bump();
            if self.starts_expr() {
                let hi = self.parse_binary(0, structs);
                return Expr::Range {
                    lo: None,
                    hi: Some(Box::new(hi)),
                };
            }
            return Expr::Range { lo: None, hi: None };
        }
        let lo = self.parse_binary(0, structs);
        if matches!(self.text(0), ".." | "..=") {
            self.bump();
            if self.starts_expr() {
                let hi = self.parse_binary(0, structs);
                return Expr::Range {
                    lo: Some(Box::new(lo)),
                    hi: Some(Box::new(hi)),
                };
            }
            return Expr::Range {
                lo: Some(Box::new(lo)),
                hi: None,
            };
        }
        lo
    }

    /// Does the current token plausibly start an expression operand?
    fn starts_expr(&self) -> bool {
        match self.kind(0) {
            Some(TokKind::Ident) => !matches!(self.text(0), "else" | "in" | "where"),
            Some(TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char) => true,
            Some(TokKind::Lifetime) => false,
            Some(TokKind::Punct) => {
                matches!(
                    self.text(0),
                    "(" | "[" | "{" | "-" | "!" | "*" | "&" | "&&" | "|" | "||"
                )
            }
            None => false,
        }
    }

    fn binop_level(op: &str) -> Option<u8> {
        Some(match op {
            "||" => 1,
            "&&" => 2,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 3,
            "|" => 4,
            "^" => 5,
            "&" => 6,
            "<<" | ">>" => 7,
            "+" | "-" => 8,
            "*" | "/" | "%" => 9,
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_level: u8, structs: bool) -> Expr {
        let mut lhs = self.parse_cast(structs);
        loop {
            let op = self.text(0).to_owned();
            let Some(level) = Self::binop_level(&op) else {
                return lhs;
            };
            if level < min_level {
                return lhs;
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(level + 1, structs);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_cast(&mut self, structs: bool) -> Expr {
        let mut e = self.parse_unary(structs);
        while self.text(0) == "as" {
            let line = self.line();
            self.bump();
            let ty = self.parse_type();
            e = Expr::Cast {
                inner: Box::new(e),
                ty,
                line,
            };
        }
        e
    }

    fn parse_unary(&mut self, structs: bool) -> Expr {
        match self.text(0) {
            "-" | "!" | "*" => {
                let op = self.text(0).chars().next().unwrap_or('-');
                self.bump();
                Expr::Unary {
                    op,
                    inner: Box::new(self.parse_unary(structs)),
                }
            }
            "&" => {
                self.bump();
                self.eat("mut");
                Expr::Unary {
                    op: '&',
                    inner: Box::new(self.parse_unary(structs)),
                }
            }
            "&&" => {
                self.bump();
                self.eat("mut");
                Expr::Unary {
                    op: '&',
                    inner: Box::new(Expr::Unary {
                        op: '&',
                        inner: Box::new(self.parse_unary(structs)),
                    }),
                }
            }
            "|" | "||" => self.parse_closure(),
            "move" if matches!(self.text(1), "|" | "||") => {
                self.bump();
                self.parse_closure()
            }
            _ => self.parse_postfix(structs),
        }
    }

    fn parse_closure(&mut self) -> Expr {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat("||") {
            // no params
        } else if self.eat("|") {
            loop {
                if self.eat("|") || self.at_end() {
                    break;
                }
                let names = self.parse_pattern_names(&[":", ",", "|"]);
                let ty = if self.eat(":") {
                    Some(self.parse_type())
                } else {
                    None
                };
                match names.as_slice() {
                    [single] => params.push((single.clone(), ty)),
                    _ => {
                        for n in names {
                            params.push((n, None));
                        }
                    }
                }
                self.eat(",");
            }
        }
        if self.eat("->") {
            let _ = self.parse_type();
        }
        let body = self.parse_expr();
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_postfix(&mut self, structs: bool) -> Expr {
        let mut e = self.parse_primary(structs);
        loop {
            match self.text(0) {
                "." => {
                    let line = self.line();
                    self.bump();
                    if self.text(0) == "await" {
                        self.bump();
                        continue;
                    }
                    let Some(t) = self.bump() else { break };
                    let name = t.text.clone();
                    // Turbofish `::<T>` after a method name.
                    let turbofish = if self.text(0) == "::" && self.text(1) == "<" {
                        self.bump();
                        let args = self.parse_generic_args();
                        args.into_iter().next()
                    } else {
                        None
                    };
                    if self.text(0) == "(" {
                        let args = self.parse_call_args();
                        e = Expr::Method {
                            recv: Box::new(e),
                            name,
                            turbofish,
                            args,
                            line,
                        };
                    } else {
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                }
                "(" => {
                    let line = self.line();
                    let args = self.parse_call_args();
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        line,
                    };
                }
                "[" => {
                    let line = self.line();
                    self.bump();
                    let idx = self.parse_expr();
                    self.eat("]");
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                        line,
                    };
                }
                "?" => {
                    self.bump();
                    e = Expr::Try { inner: Box::new(e) };
                }
                _ => break,
            }
        }
        e
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat("(") {
            return args;
        }
        loop {
            if self.eat(")") || self.at_end() {
                return args;
            }
            args.push(self.parse_expr());
            if !self.eat(",") && self.text(0) != ")" {
                self.recover();
                self.skip_until(&[",", ")"]);
                self.eat(",");
            }
        }
    }

    fn parse_primary(&mut self, structs: bool) -> Expr {
        let line = self.line();
        // Labeled loops / blocks: `'outer: loop { ... }`.
        if self.kind(0) == Some(&TokKind::Lifetime) && self.text(1) == ":" {
            self.bump();
            self.bump();
        }
        match self.text(0) {
            "(" => {
                self.bump();
                let mut items = Vec::new();
                let mut is_tuple = false;
                loop {
                    if self.eat(")") || self.at_end() {
                        break;
                    }
                    items.push(self.parse_expr());
                    if self.eat(",") {
                        is_tuple = true;
                    } else if self.text(0) != ")" {
                        self.recover();
                        self.skip_until(&[",", ")"]);
                        if self.eat(",") {
                            is_tuple = true;
                        }
                    }
                }
                if !is_tuple && items.len() == 1 {
                    items.remove(0)
                } else {
                    Expr::Tuple { items, line }
                }
            }
            "[" => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    if self.eat("]") || self.at_end() {
                        break;
                    }
                    items.push(self.parse_expr());
                    if self.eat(";") {
                        // `[elem; count]`
                        items.push(self.parse_expr());
                        self.eat("]");
                        break;
                    }
                    if !self.eat(",") && self.text(0) != "]" {
                        self.recover();
                        self.skip_until(&[",", "]"]);
                        self.eat(",");
                    }
                }
                Expr::Array { items, line }
            }
            "{" => Expr::Block(self.parse_block()),
            "unsafe" if self.text(1) == "{" => {
                self.bump();
                Expr::Block(self.parse_block())
            }
            "if" => self.parse_if(),
            "match" => self.parse_match(),
            "for" => {
                self.bump();
                let vars = self.parse_pattern_names(&["in"]);
                self.eat("in");
                let iter = self.parse_expr_no_struct();
                let body = self.parse_block();
                Expr::For {
                    vars,
                    iter: Box::new(iter),
                    body,
                }
            }
            "while" => {
                self.bump();
                let cond = if self.text(0) == "let" {
                    self.parse_let_cond()
                } else {
                    self.parse_expr_no_struct()
                };
                let body = self.parse_block();
                Expr::While {
                    cond: Box::new(cond),
                    body,
                }
            }
            "loop" => {
                self.bump();
                Expr::Loop {
                    body: self.parse_block(),
                }
            }
            "return" | "break" => {
                self.bump();
                if self.kind(0) == Some(&TokKind::Lifetime) {
                    self.bump();
                }
                let value = if self.starts_expr() {
                    Some(Box::new(self.parse_expr()))
                } else {
                    None
                };
                Expr::Return { value, line }
            }
            "continue" => {
                self.bump();
                if self.kind(0) == Some(&TokKind::Lifetime) {
                    self.bump();
                }
                Expr::Return { value: None, line }
            }
            "true" | "false" => {
                let text = self.bump().map_or(String::new(), |t| t.text.clone());
                Expr::Lit {
                    kind: LitKind::Bool,
                    text,
                    line,
                }
            }
            _ => match self.kind(0) {
                Some(TokKind::Int) => self.lit(LitKind::Int, line),
                Some(TokKind::Float) => self.lit(LitKind::Float, line),
                Some(TokKind::Str) => self.lit(LitKind::Str, line),
                Some(TokKind::Char) => self.lit(LitKind::Char, line),
                Some(TokKind::Ident) => self.parse_path_expr(structs),
                _ => {
                    // Out-of-grammar token: consume one balanced group.
                    self.recover();
                    self.skip_group();
                    Expr::Opaque { line }
                }
            },
        }
    }

    fn lit(&mut self, kind: LitKind, line: u32) -> Expr {
        let text = self.bump().map_or(String::new(), |t| t.text.clone());
        Expr::Lit { kind, text, line }
    }

    fn parse_if(&mut self) -> Expr {
        self.eat("if");
        let cond = if self.text(0) == "let" {
            self.parse_let_cond()
        } else {
            self.parse_expr_no_struct()
        };
        let then = self.parse_block();
        let alt = if self.eat("else") {
            if self.text(0) == "if" {
                Some(Box::new(self.parse_if()))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            alt,
        }
    }

    /// `let PAT = expr` inside `if` / `while` conditions.
    fn parse_let_cond(&mut self) -> Expr {
        self.eat("let");
        let names = self.parse_pattern_names(&["="]);
        self.eat("=");
        let value = self.parse_expr_no_struct();
        Expr::LetCond {
            names,
            value: Box::new(value),
        }
    }

    fn parse_match(&mut self) -> Expr {
        self.eat("match");
        let scrutinee = self.parse_expr_no_struct();
        let mut arms = Vec::new();
        if self.eat("{") {
            loop {
                if self.eat("}") || self.at_end() {
                    break;
                }
                self.parse_attrs();
                let names = self.parse_pattern_names(&["=>"]);
                self.eat("=>");
                let body = self.parse_expr();
                arms.push((names, body));
                self.eat(",");
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }

    fn parse_path_expr(&mut self, structs: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.kind != TokKind::Ident {
                break;
            }
            segs.push(t.text.clone());
            self.bump();
            if self.text(0) == "::" {
                if self.text(1) == "<" {
                    // Turbofish in expression position.
                    self.bump();
                    let _ = self.parse_generic_args();
                    if self.text(0) == "::" && self.kind(1) == Some(&TokKind::Ident) {
                        self.bump();
                        continue;
                    }
                    break;
                }
                if self.kind(1) == Some(&TokKind::Ident) {
                    self.bump();
                    continue;
                }
            }
            break;
        }
        if segs.is_empty() {
            self.recover();
            self.skip_group();
            return Expr::Opaque { line };
        }
        // Macro invocation `name!(...)` / `name![...]` / `name!{...}`.
        if self.text(0) == "!" && matches!(self.text(1), "(" | "[" | "{") {
            self.bump();
            let name = segs.join("::");
            let args = self.parse_macro_args();
            return Expr::Macro { name, args, line };
        }
        // Struct literal `Path { ... }` — only where the grammar allows
        // it, and only for capitalised heads (`Self` included), so
        // `if x { ... }` never misparses.
        let head_capitalised = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(char::is_uppercase);
        if structs && head_capitalised && self.text(0) == "{" {
            return self.parse_struct_lit(segs, line);
        }
        Expr::Path { segs, line }
    }

    /// Best-effort parse of macro arguments as comma-separated
    /// expressions. Non-expression fragments (patterns, format specs)
    /// are skipped without counting as recoveries.
    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let (open, close) = match self.text(0) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return Vec::new(),
        };
        self.in_macro += 1;
        self.bump();
        let mut args = Vec::new();
        loop {
            if self.eat(close) || self.at_end() {
                break;
            }
            args.push(self.parse_expr());
            if !self.eat(",") && self.text(0) != close {
                // Token soup (e.g. `matches!` patterns, `=>` arms):
                // skip to the next argument boundary.
                self.skip_until(&[",", close]);
                if self.text(0) == close {
                    continue;
                }
                self.eat(",");
            }
        }
        let _ = open;
        self.in_macro -= 1;
        args
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: u32) -> Expr {
        self.eat("{");
        let mut fields = Vec::new();
        let mut rest = None;
        loop {
            if self.eat("}") || self.at_end() {
                break;
            }
            if matches!(self.text(0), ".." | "..=") {
                self.bump();
                // Bare `..` before the close is a rest *pattern*
                // (`matches!(o, P::I { .. })`), not functional-update
                // syntax — there is no expression to parse.
                if !matches!(self.text(0), "}" | ",") {
                    rest = Some(Box::new(self.parse_expr()));
                }
                self.eat(",");
                continue;
            }
            let Some(t) = self.bump() else { break };
            let fname = t.text.clone();
            let fline = t.line;
            if self.eat(":") {
                let value = self.parse_expr();
                fields.push((fname, value));
            } else {
                // Shorthand `Point { x, y }` — the field value is the
                // same-named binding.
                fields.push((
                    fname.clone(),
                    Expr::Path {
                        segs: vec![fname],
                        line: fline,
                    },
                ));
            }
            self.eat(",");
        }
        Expr::StructLit {
            path,
            fields,
            rest,
            line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Ast {
        let ast = parse_source(src);
        assert_eq!(ast.recovered, 0, "recoveries parsing: {src}");
        ast
    }

    fn first_fn(ast: &Ast) -> &FnDef {
        fn find(items: &[Item]) -> Option<&FnDef> {
            for item in items {
                match item {
                    Item::Fn(f) => return Some(f),
                    Item::Impl { items, .. }
                    | Item::Mod { items, .. }
                    | Item::Trait { items, .. } => {
                        if let Some(f) = find(items) {
                            return Some(f);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&ast.items).expect("fixture has a fn")
    }

    #[test]
    fn parses_fn_signature_and_body() {
        let ast = parse_ok("pub fn area(w: f64, h: f64) -> f64 { w * h }");
        let f = first_fn(&ast);
        assert_eq!(f.name, "area");
        assert_eq!(f.params.len(), 2);
        assert!(f.params[0].ty.is_float());
        assert!(f.ret.as_ref().is_some_and(TypeRef::is_float));
        assert_eq!(f.body.as_ref().map(|b| b.stmts.len()), Some(1));
    }

    #[test]
    fn parses_nested_generics_with_shift_split() {
        let ast = parse_ok("fn f(xs: Vec<Vec<f64>>, m: BTreeMap<String, Vec<u64>>) {}");
        let f = first_fn(&ast);
        let TypeRef::Path { name, args } = &f.params[0].ty else {
            panic!("expected path type");
        };
        assert_eq!(name, "Vec");
        assert_eq!(args.len(), 1);
        let TypeRef::Path {
            name: inner,
            args: inner_args,
        } = &args[0]
        else {
            panic!("expected inner Vec");
        };
        assert_eq!(inner, "Vec");
        assert!(inner_args[0].is_float());
    }

    #[test]
    fn shift_expr_still_parses_after_join() {
        let ast = parse_ok("fn f(x: u64) -> u64 { (x >> 3) << 2 }");
        assert_eq!(ast.recovered, 0);
    }

    #[test]
    fn parses_struct_fields_and_tuple_structs() {
        let ast = parse_ok("struct P { x: f64, y: f64 }\nstruct Wrap(f64, u64);\nstruct Unit;");
        let Item::Struct(p) = &ast.items[0] else {
            panic!()
        };
        assert_eq!(p.fields.len(), 2);
        assert!(p.fields[0].1.is_float());
        let Item::Struct(w) = &ast.items[1] else {
            panic!()
        };
        assert_eq!(w.fields[0].0, "0");
    }

    #[test]
    fn parses_impl_methods_with_self() {
        let ast = parse_ok("impl Engine { fn tick(&mut self, dt: f64) -> f64 { self.rate * dt } }");
        let Item::Impl { self_ty, items, .. } = &ast.items[0] else {
            panic!()
        };
        assert_eq!(self_ty, "Engine");
        let Item::Fn(f) = &items[0] else { panic!() };
        assert_eq!(f.params[0].name, "self");
        assert!(f.params[1].ty.is_float());
    }

    #[test]
    fn parses_closures_and_method_chains() {
        let src = r#"
            fn f(xs: &[f64]) -> f64 {
                xs.iter().map(|x| x * 2.0).filter(|x| *x > 0.0).sum::<f64>()
            }
        "#;
        let ast = parse_ok(src);
        let f = first_fn(&ast);
        let Some(Stmt::Expr(Expr::Method {
            name, turbofish, ..
        })) = f.body.as_ref().and_then(|b| b.stmts.last())
        else {
            panic!("expected method chain tail");
        };
        assert_eq!(name, "sum");
        assert!(turbofish.as_ref().is_some_and(TypeRef::is_float));
    }

    #[test]
    fn parses_control_flow_and_match_bindings() {
        let src = r#"
            fn f(x: Option<f64>) -> f64 {
                match x {
                    Some(v) => v,
                    None => 0.0,
                }
            }
        "#;
        let ast = parse_ok(src);
        let f = first_fn(&ast);
        let Some(Stmt::Expr(Expr::Match { arms, .. })) =
            f.body.as_ref().and_then(|b| b.stmts.last())
        else {
            panic!("expected match");
        };
        assert_eq!(arms[0].0, vec!["v".to_owned()]);
        assert!(arms[1].0.is_empty());
    }

    #[test]
    fn struct_literal_vs_block_ambiguity() {
        let ast = parse_ok("fn f(c: bool) -> u64 { if c { 1 } else { 2 } }");
        assert_eq!(ast.recovered, 0);
        let ast2 = parse_ok("fn g() -> P { P { x: 1.0, y: 2.0 } }");
        assert_eq!(ast2.recovered, 0);
    }

    #[test]
    fn let_else_and_if_let_parse() {
        let src = r#"
            fn f(x: Option<u64>) -> u64 {
                let Some(v) = x else { return 0 };
                if let Some(w) = x { w } else { v }
            }
        "#;
        parse_ok(src);
    }

    #[test]
    fn tuple_field_chains_parse() {
        let ast = parse_ok("fn f(p: ((f64, f64), u64)) -> f64 { p.0.1 }");
        let f = first_fn(&ast);
        let Some(Stmt::Expr(Expr::Field { name, base, .. })) =
            f.body.as_ref().and_then(|b| b.stmts.last())
        else {
            panic!("expected nested tuple field");
        };
        assert_eq!(name, "1");
        assert!(matches!(&**base, Expr::Field { name, .. } if name == "0"));
    }

    #[test]
    fn macros_are_lenient_not_recoveries() {
        let src = r#"
            fn f(x: u64) -> bool {
                assert!(x > 0, "x must be positive: {x}");
                matches!(x, 1 | 2 | 3)
            }
        "#;
        parse_ok(src);
    }

    #[test]
    fn test_attributes_are_tracked() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert_eq!(1, 1); }
            }
        "#;
        let ast = parse_ok(src);
        let Item::Mod { is_test, items, .. } = &ast.items[0] else {
            panic!()
        };
        assert!(is_test);
        let Item::Fn(f) = &items[0] else { panic!() };
        assert!(f.is_test);
    }

    #[test]
    fn inner_attributes_and_doc_comments_skip() {
        let src = "#![allow(clippy::unwrap_used)]\n//! module doc\nfn f() {}\n";
        let ast = parse_ok(src);
        assert!(matches!(
            ast.items.iter().find(|i| matches!(i, Item::Fn(_))),
            Some(Item::Fn(_))
        ));
    }

    #[test]
    fn item_count_is_recursive() {
        let ast = parse_ok("mod m { fn a() {} fn b() {} } fn c() {}");
        assert_eq!(ast.item_count(), 4);
    }
}
