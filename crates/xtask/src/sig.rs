//! Workspace signature index.
//!
//! Phase 1 of the typed lint pipeline parses every crate (including
//! exempt ones — `flower-cli` calls into deterministic crates, so its
//! signatures matter for inference) and records:
//!
//! * `fn` return types, keyed by bare name and by `Type::name` for
//!   methods,
//! * `struct` field types, keyed by `Type.field`,
//! * `const` / `static` types by name,
//! * the set of **taint-propagating functions**: fns whose return
//!   value derives from a nondeterminism source, closed under a
//!   bounded fixed-point so taint flows through call chains.
//!
//! Per-file indexes are merged with a sequential fold over
//! path-sorted results (`BTreeMap` storage), so the index — and every
//! diagnostic derived from it — is byte-identical at any
//! `FLOWER_THREADS`.

use std::collections::{BTreeMap, BTreeSet};

use crate::flow;
use crate::parse::{Ast, FnDef, Item, TypeRef};

/// Return-type entry: a keyed fn can be unambiguous or collide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetEntry {
    /// Exactly one fn with this key; its return type.
    One(TypeRef),
    /// Multiple fns share the key with conflicting return types —
    /// inference must not guess.
    Ambiguous,
}

/// The merged workspace index.
#[derive(Debug, Default)]
pub struct SigIndex {
    /// `name` and `Type::name` → return type.
    pub fn_returns: BTreeMap<String, RetEntry>,
    /// `Type.field` → field type.
    pub struct_fields: BTreeMap<String, TypeRef>,
    /// `NAME` → const/static type.
    pub const_types: BTreeMap<String, TypeRef>,
    /// Keys of fns (same keying as `fn_returns`) whose return value is
    /// determinism-tainted.
    pub tainted_fns: BTreeSet<String>,
}

/// One file's contribution, produced in parallel phase 1.
#[derive(Debug, Default)]
pub struct FileSigs {
    fn_returns: Vec<(String, TypeRef)>,
    struct_fields: Vec<(String, TypeRef)>,
    const_types: Vec<(String, TypeRef)>,
    /// Fn key → keys of fns its return value depends on (for the
    /// fixed-point) and whether it directly returns a source.
    fn_deps: Vec<(String, bool, Vec<String>)>,
}

/// Extract one file's signature contribution from its AST.
///
/// `suppressed` holds source lines covered by a justified
/// `lint:allow` — sources there do not mark their fn tainted.
/// `taint_eligible` is false for exempt crates (cli, bench, xtask):
/// their return types still index (deterministic code may share
/// names), but their bodies never contribute taint — deterministic
/// crates cannot depend on them, so cross-crate name collisions would
/// only produce false flows.
pub fn collect_file(ast: &Ast, suppressed: &BTreeSet<u32>, taint_eligible: bool) -> FileSigs {
    let mut out = FileSigs::default();
    let cx = Cx {
        suppressed,
        taint_eligible,
    };
    walk_items(&ast.items, None, false, &cx, &mut out);
    out
}

struct Cx<'a> {
    suppressed: &'a BTreeSet<u32>,
    taint_eligible: bool,
}

fn walk_items(items: &[Item], self_ty: Option<&str>, in_test: bool, cx: &Cx, out: &mut FileSigs) {
    for item in items {
        match item {
            Item::Fn(f) => record_fn(f, self_ty, in_test, cx, out),
            Item::Struct(s) => {
                for (fname, fty) in &s.fields {
                    out.struct_fields
                        .push((format!("{}.{}", s.name, fname), fty.clone()));
                }
            }
            Item::Const(c) => {
                out.const_types.push((c.name.clone(), c.ty.clone()));
            }
            Item::Impl {
                self_ty: ty,
                items,
                is_test,
            } => walk_items(items, Some(ty), in_test || *is_test, cx, out),
            Item::Mod { items, is_test, .. } => {
                walk_items(items, self_ty, in_test || *is_test, cx, out);
            }
            Item::Trait { items, .. } => walk_items(items, self_ty, in_test, cx, out),
            Item::Enum { .. } | Item::Other => {}
        }
    }
}

fn record_fn(f: &FnDef, self_ty: Option<&str>, in_test: bool, cx: &Cx, out: &mut FileSigs) {
    if in_test || f.is_test {
        // Test helpers may legitimately be nondeterministic and their
        // signatures must not shadow production ones.
        return;
    }
    let keys: Vec<String> = match self_ty {
        Some(ty) => vec![format!("{ty}::{}", f.name), f.name.clone()],
        None => vec![f.name.clone()],
    };
    if let Some(ret) = &f.ret {
        for key in &keys {
            out.fn_returns.push((key.clone(), ret.clone()));
        }
    }
    // Taint seed + dependency edges for the fixed-point: which fn
    // calls feed this fn's returned value.
    if cx.taint_eligible {
        if let Some(body) = &f.body {
            let (direct, callees) = flow::return_taint_summary(body, cx.suppressed);
            if direct || !callees.is_empty() {
                for key in &keys {
                    out.fn_deps.push((key.clone(), direct, callees.clone()));
                }
            }
        }
    }
    // Nested items inside the body (rare; nested fns).
    if let Some(body) = &f.body {
        for stmt in &body.stmts {
            if let crate::parse::Stmt::Item(item) = stmt {
                walk_items(std::slice::from_ref(item), self_ty, in_test, cx, out);
            }
        }
    }
}

/// Merge per-file signature sets into the workspace index.
///
/// `files` must already be in path-sorted order — the caller sorts the
/// file list before the parallel map, and `par_map` returns results in
/// submission order, so this fold is deterministic.
pub fn merge(files: &[FileSigs]) -> SigIndex {
    let mut idx = SigIndex::default();
    for fs in files {
        for (key, ty) in &fs.fn_returns {
            match idx.fn_returns.get(key) {
                None => {
                    idx.fn_returns
                        .insert(key.clone(), RetEntry::One(ty.clone()));
                }
                Some(RetEntry::One(existing)) if existing != ty => {
                    idx.fn_returns.insert(key.clone(), RetEntry::Ambiguous);
                }
                _ => {}
            }
        }
        for (key, ty) in &fs.struct_fields {
            // First writer wins; duplicate struct names across crates
            // with different field types are rare enough that a stale
            // entry only weakens inference, never corrupts it — but an
            // explicit conflict downgrade keeps it honest.
            match idx.struct_fields.get(key) {
                None => {
                    idx.struct_fields.insert(key.clone(), ty.clone());
                }
                Some(existing) if existing != ty => {
                    idx.struct_fields.insert(key.clone(), TypeRef::Unknown);
                }
                _ => {}
            }
        }
        for (key, ty) in &fs.const_types {
            match idx.const_types.get(key) {
                None => {
                    idx.const_types.insert(key.clone(), ty.clone());
                }
                Some(existing) if existing != ty => {
                    idx.const_types.insert(key.clone(), TypeRef::Unknown);
                }
                _ => {}
            }
        }
    }
    // Taint fixed-point: a fn is tainted if it directly returns a
    // source, or if any callee feeding its return value is tainted.
    // Bounded at the workspace fn count — each round marks at least
    // one new fn or the set is closed.
    let mut deps: BTreeMap<&str, (bool, &[String])> = BTreeMap::new();
    for fs in files {
        for (key, direct, callees) in &fs.fn_deps {
            let entry = deps.entry(key).or_insert((false, &[]));
            entry.0 |= *direct;
            if !callees.is_empty() {
                entry.1 = callees;
            }
        }
    }
    for (key, (direct, _)) in &deps {
        if *direct {
            idx.tainted_fns.insert((*key).to_owned());
        }
    }
    let bound = deps.len() + 1;
    for _ in 0..bound {
        let mut grew = false;
        for (key, (_, callees)) in &deps {
            if idx.tainted_fns.contains(*key) {
                continue;
            }
            if callees.iter().any(|c| idx.tainted_fns.contains(c)) {
                idx.tainted_fns.insert((*key).to_owned());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    idx
}

impl SigIndex {
    /// Look up an unambiguous return type.
    pub fn ret_of(&self, key: &str) -> Option<&TypeRef> {
        match self.fn_returns.get(key) {
            Some(RetEntry::One(ty)) => Some(ty),
            _ => None,
        }
    }

    /// Look up a struct field type by `Type.field`.
    pub fn field_of(&self, ty: &str, field: &str) -> Option<&TypeRef> {
        self.struct_fields.get(&format!("{ty}.{field}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn index_of(srcs: &[&str]) -> SigIndex {
        let none = BTreeSet::new();
        let files: Vec<FileSigs> = srcs
            .iter()
            .map(|s| collect_file(&parse_source(s), &none, true))
            .collect();
        merge(&files)
    }

    #[test]
    fn indexes_fn_returns_and_methods() {
        let idx = index_of(&[
            "pub fn mean(xs: &[f64]) -> f64 { 0.0 }",
            "impl Engine { pub fn rate(&self) -> f64 { self.r } }",
        ]);
        assert!(idx.ret_of("mean").is_some_and(TypeRef::is_float));
        assert!(idx.ret_of("Engine::rate").is_some_and(TypeRef::is_float));
        assert!(idx.ret_of("rate").is_some_and(TypeRef::is_float));
    }

    #[test]
    fn conflicting_returns_are_ambiguous() {
        let idx = index_of(&[
            "fn size() -> u64 { 0 }",
            "impl A { fn size(&self) -> f64 { 0.0 } }",
        ]);
        assert_eq!(idx.ret_of("size"), None);
        assert!(idx.ret_of("A::size").is_some_and(TypeRef::is_float));
    }

    #[test]
    fn indexes_struct_fields_and_consts() {
        let idx = index_of(&["struct P { x: f64, n: u64 }\nconst EPS: f64 = 1e-9;"]);
        assert!(idx.field_of("P", "x").is_some_and(TypeRef::is_float));
        assert!(!idx.field_of("P", "n").is_some_and(TypeRef::is_float));
        assert!(idx.const_types.get("EPS").is_some_and(TypeRef::is_float));
    }

    #[test]
    fn test_fns_do_not_pollute_index() {
        let idx = index_of(&["#[cfg(test)] mod tests { fn helper() -> f64 { 0.0 } }"]);
        assert_eq!(idx.ret_of("helper"), None);
    }

    #[test]
    fn taint_closes_over_call_chains() {
        let idx = index_of(&[
            "fn now_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            "fn stamp() -> u64 { now_ms() + 1 }",
            "fn clean() -> u64 { 42 }",
        ]);
        assert!(idx.tainted_fns.contains("now_ms"));
        assert!(idx.tainted_fns.contains("stamp"));
        assert!(!idx.tainted_fns.contains("clean"));
    }
}
