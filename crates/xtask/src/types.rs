//! Local binding-type inference.
//!
//! Resolves the type of each expression well enough for the float
//! rules: `let` annotations, literals, parameter types, struct field
//! access through the signature index, calls resolved by fn name,
//! method calls on known receivers, float-preserving arithmetic, and
//! casts. Inference is deliberately conservative — `Unknown` is always
//! an acceptable answer, and rules only fire on a positive `is_float`
//! from **both** sides, so imprecision can only cause false negatives,
//! never false positives.

use std::collections::BTreeMap;

use crate::parse::{Block, Expr, FnDef, LitKind, Stmt, TypeRef};
use crate::sig::SigIndex;

/// Lexical scope stack of binding types.
pub struct TypeEnv<'a> {
    /// Workspace signature index.
    pub idx: &'a SigIndex,
    /// Enclosing `impl` type name, for `self.field` lookups.
    pub self_ty: Option<&'a str>,
    scopes: Vec<BTreeMap<String, TypeRef>>,
}

/// `f64` methods returning `f64` (receiver-float preserved).
const FLOAT_METHODS: &[&str] = &[
    "abs",
    "sqrt",
    "min",
    "max",
    "powi",
    "powf",
    "ln",
    "log2",
    "log10",
    "exp",
    "exp2",
    "clamp",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "recip",
    "mul_add",
    "hypot",
    "atan2",
    "sin",
    "cos",
    "tan",
    "signum",
    "copysign",
    "to_degrees",
    "to_radians",
    "rem_euclid",
];

/// Methods whose return type matches a known element type
/// (`Vec<f64>::remove`, iterator `sum::<f64>()` handled separately).
const ELEM_METHODS: &[&str] = &["remove", "swap_remove", "pop"];

impl<'a> TypeEnv<'a> {
    /// Fresh env with one (outer) scope.
    pub fn new(idx: &'a SigIndex, self_ty: Option<&'a str>) -> TypeEnv<'a> {
        TypeEnv {
            idx,
            self_ty,
            scopes: vec![BTreeMap::new()],
        }
    }

    /// Seed the outer scope with a fn's parameters.
    pub fn bind_params(&mut self, f: &FnDef) {
        for p in &f.params {
            if !p.name.is_empty() {
                self.bind(&p.name, p.ty.clone());
            }
        }
    }

    /// Push/pop lexical scopes.
    pub fn push(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    /// Pop the innermost scope.
    pub fn pop(&mut self) {
        if self.scopes.len() > 1 {
            self.scopes.pop();
        }
    }

    /// Bind (or shadow) a name in the innermost scope.
    pub fn bind(&mut self, name: &str, ty: TypeRef) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_owned(), ty);
        }
    }

    /// Resolve a name, innermost scope first, then workspace consts.
    pub fn lookup(&self, name: &str) -> Option<TypeRef> {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return Some(ty.clone());
            }
        }
        self.idx.const_types.get(name).cloned()
    }

    /// Process a `let`, binding its names from annotation or inferred
    /// initialiser type.
    pub fn process_let(&mut self, stmt: &Stmt) {
        let Stmt::Let {
            name,
            names,
            ty,
            init,
            ..
        } = stmt
        else {
            return;
        };
        let resolved = match ty {
            Some(t) => t.clone(),
            None => init.as_ref().map_or(TypeRef::Unknown, |e| self.type_of(e)),
        };
        if let Some(n) = name {
            self.bind(n, resolved);
        } else {
            // Destructuring: per-element types are not tracked; bind
            // every name Unknown so shadowing still works, except the
            // single-name `Some(x)` style where an `Option<T>` /
            // `Result<T, _>` initialiser reveals the element.
            let elem = match &resolved {
                TypeRef::Path { name: n, args }
                    if (n == "Option" || n == "Result") && !args.is_empty() =>
                {
                    args[0].clone()
                }
                _ => TypeRef::Unknown,
            };
            for (i, n) in names.iter().enumerate() {
                let t = if names.len() == 1 && i == 0 {
                    elem.clone()
                } else {
                    TypeRef::Unknown
                };
                self.bind(n, t);
            }
        }
    }

    /// Infer an expression's type; `Unknown` when out of reach.
    pub fn type_of(&self, e: &Expr) -> TypeRef {
        match e {
            Expr::Lit { kind, text, .. } => match kind {
                LitKind::Float => {
                    if text.ends_with("f32") {
                        TypeRef::named("f32")
                    } else {
                        TypeRef::named("f64")
                    }
                }
                LitKind::Int => {
                    // Suffixed int literals carry their type; float
                    // suffixes are already lexed as Float.
                    for suffix in ["u64", "u32", "usize", "i64", "i32", "isize", "u8", "u16"] {
                        if text.ends_with(suffix) {
                            return TypeRef::named(suffix);
                        }
                    }
                    TypeRef::named("{integer}")
                }
                LitKind::Bool => TypeRef::named("bool"),
                LitKind::Str => TypeRef::Unknown,
                LitKind::Char => TypeRef::named("char"),
            },
            Expr::Path { segs, .. } => match segs.as_slice() {
                [single] => self.lookup(single).unwrap_or(TypeRef::Unknown),
                [.., last] => self
                    .idx
                    .const_types
                    .get(last)
                    .cloned()
                    .unwrap_or(TypeRef::Unknown),
                [] => TypeRef::Unknown,
            },
            Expr::Cast { ty, .. } => ty.clone(),
            Expr::Unary { op, inner } => match op {
                '-' => self.type_of(inner),
                '!' => self.type_of(inner),
                '*' => match self.type_of(inner) {
                    TypeRef::Ref(t) => (*t).clone(),
                    other => other,
                },
                '&' => TypeRef::Ref(Box::new(self.type_of(inner))),
                _ => TypeRef::Unknown,
            },
            Expr::Binary { op, lhs, rhs, .. } => match op.as_str() {
                "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||" => TypeRef::named("bool"),
                "+" | "-" | "*" | "/" | "%" => {
                    let lt = self.type_of(lhs);
                    if lt.is_float() {
                        return lt.deref().clone();
                    }
                    let rt = self.type_of(rhs);
                    if rt.is_float() {
                        return rt.deref().clone();
                    }
                    if matches!(lt, TypeRef::Unknown) {
                        rt
                    } else {
                        lt
                    }
                }
                _ => self.type_of(lhs),
            },
            Expr::Field { base, name, .. } => {
                let base_ty = self.type_of(base);
                match base_ty.deref() {
                    TypeRef::Path { name: ty_name, .. } => {
                        let owner = if ty_name == "Self" {
                            self.self_ty.unwrap_or("Self")
                        } else {
                            ty_name
                        };
                        self.idx
                            .field_of(owner, name)
                            .cloned()
                            .unwrap_or(TypeRef::Unknown)
                    }
                    TypeRef::Tuple(parts) => name
                        .parse::<usize>()
                        .ok()
                        .and_then(|i| parts.get(i))
                        .cloned()
                        .unwrap_or(TypeRef::Unknown),
                    _ => TypeRef::Unknown,
                }
            }
            Expr::Index { base, .. } => {
                let base_ty = self.type_of(base);
                match base_ty.deref() {
                    TypeRef::Slice(elem) => (**elem).clone(),
                    TypeRef::Path { name, args } if name == "Vec" && !args.is_empty() => {
                        args[0].clone()
                    }
                    _ => TypeRef::Unknown,
                }
            }
            Expr::Call { callee, .. } => match &**callee {
                Expr::Path { segs, .. } => self.resolve_call(segs),
                _ => TypeRef::Unknown,
            },
            Expr::Method {
                recv,
                name,
                turbofish,
                args,
                ..
            } => self.method_type(recv, name, turbofish.as_ref(), args),
            Expr::If { then, alt, .. } => {
                let t = self.block_tail_type(then);
                if !matches!(t, TypeRef::Unknown) {
                    return t;
                }
                alt.as_deref().map_or(TypeRef::Unknown, |a| self.type_of(a))
            }
            Expr::Block(b) => self.block_tail_type(b),
            Expr::Match { arms, .. } => arms
                .first()
                .map_or(TypeRef::Unknown, |(_, body)| self.type_of(body)),
            Expr::Try { inner } => match self.type_of(inner).deref() {
                TypeRef::Path { name, args }
                    if (name == "Option" || name == "Result") && !args.is_empty() =>
                {
                    args[0].clone()
                }
                _ => TypeRef::Unknown,
            },
            Expr::StructLit { path, .. } => {
                path.last().map_or(TypeRef::Unknown, |n| TypeRef::named(n))
            }
            Expr::Tuple { items, .. } => {
                TypeRef::Tuple(items.iter().map(|i| self.type_of(i)).collect())
            }
            Expr::Array { items, .. } => {
                let elem = items.first().map_or(TypeRef::Unknown, |i| self.type_of(i));
                TypeRef::Slice(Box::new(elem))
            }
            Expr::Assign { .. }
            | Expr::Closure { .. }
            | Expr::For { .. }
            | Expr::While { .. }
            | Expr::Loop { .. }
            | Expr::Return { .. }
            | Expr::Macro { .. }
            | Expr::Range { .. }
            | Expr::LetCond { .. }
            | Expr::Opaque { .. } => TypeRef::Unknown,
        }
    }

    fn block_tail_type(&self, b: &Block) -> TypeRef {
        match b.stmts.last() {
            Some(Stmt::Expr(e)) => self.type_of(e),
            _ => TypeRef::Unknown,
        }
    }

    fn resolve_call(&self, segs: &[String]) -> TypeRef {
        // `Type::new(...)` style: prefer the qualified key, fall back
        // to the bare fn name, then to constructor convention.
        if segs.len() >= 2 {
            let qualified = format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1]);
            if let Some(ty) = self.idx.ret_of(&qualified) {
                return ty.clone();
            }
            let ctor = &segs[segs.len() - 2];
            let is_ctor = matches!(
                segs[segs.len() - 1].as_str(),
                "new" | "default" | "seed" | "from" | "with_capacity"
            );
            if is_ctor && ctor.chars().next().is_some_and(char::is_uppercase) {
                return TypeRef::named(ctor);
            }
        }
        if let Some(last) = segs.last() {
            if let Some(ty) = self.idx.ret_of(last) {
                return ty.clone();
            }
        }
        TypeRef::Unknown
    }

    fn method_type(
        &self,
        recv: &Expr,
        name: &str,
        turbofish: Option<&TypeRef>,
        args: &[Expr],
    ) -> TypeRef {
        // `iter.sum::<f64>()` / `collect::<Vec<f64>>()` — the
        // turbofish *is* the return type.
        if let Some(t) = turbofish {
            if matches!(name, "sum" | "product" | "collect" | "parse" | "fold") {
                if name == "parse" {
                    return TypeRef::Path {
                        name: "Result".to_owned(),
                        args: vec![t.clone(), TypeRef::Unknown],
                    };
                }
                return t.clone();
            }
        }
        let recv_ty = self.type_of(recv);
        let recv_ty = recv_ty.deref();
        if recv_ty.is_float() && FLOAT_METHODS.contains(&name) {
            return recv_ty.clone();
        }
        if name == "len" || name == "count" {
            return TypeRef::named("usize");
        }
        if ELEM_METHODS.contains(&name) {
            if let TypeRef::Path { name: n, args } = recv_ty {
                if n == "Vec" && !args.is_empty() {
                    return args[0].clone();
                }
            }
        }
        if matches!(name, "clone" | "to_owned") {
            return recv_ty.clone();
        }
        if matches!(name, "unwrap" | "expect" | "unwrap_or_default") {
            if let TypeRef::Path { name: n, args } = recv_ty {
                if (n == "Option" || n == "Result") && !args.is_empty() {
                    return args[0].clone();
                }
            }
        }
        if name == "unwrap_or" {
            if let Some(default) = args.first() {
                let t = self.type_of(default);
                if !matches!(t, TypeRef::Unknown) {
                    return t;
                }
            }
        }
        // Method resolved through the signature index by receiver type.
        if let TypeRef::Path { name: ty_name, .. } = recv_ty {
            let owner = if ty_name == "Self" {
                self.self_ty.unwrap_or("Self")
            } else {
                ty_name
            };
            if let Some(ty) = self.idx.ret_of(&format!("{owner}::{name}")) {
                return ty.clone();
            }
        }
        TypeRef::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_source, Item};
    use crate::sig::{collect_file, merge};

    /// Infer the type of the final expression statement of the first
    /// fn in `src`, with the index built from `src` itself.
    fn tail_type(src: &str) -> TypeRef {
        let ast = parse_source(src);
        assert_eq!(ast.recovered, 0, "fixture must parse cleanly");
        let idx = merge(&[collect_file(&ast, &std::collections::BTreeSet::new(), true)]);
        for item in &ast.items {
            if let Item::Fn(f) = item {
                let mut env = TypeEnv::new(&idx, None);
                env.bind_params(f);
                let body = f.body.as_ref().expect("fixture fn has a body");
                for stmt in &body.stmts {
                    env.process_let(stmt);
                }
                if let Some(Stmt::Expr(e)) = body.stmts.last() {
                    return env.type_of(e);
                }
            }
        }
        TypeRef::Unknown
    }

    #[test]
    fn annotation_wins() {
        assert!(tail_type("fn f() -> f64 { let a: f64 = helper(); a }").is_float());
    }

    #[test]
    fn float_literal_infers() {
        assert!(tail_type("fn f() -> f64 { let a = 0.5; a }").is_float());
        assert!(!tail_type("fn f() -> u64 { let a = 5; a }").is_float());
    }

    #[test]
    fn call_resolves_through_index() {
        let src = "fn mean(xs: &[f64]) -> f64 { 0.0 }\nfn f() -> f64 { let m = mean(&[]); m }";
        assert!(tail_type(src).is_float());
    }

    #[test]
    fn field_access_resolves() {
        let src = "struct P { x: f64 }\nfn f(p: &P) -> f64 { let v = p.x; v }";
        assert!(tail_type(src).is_float());
    }

    #[test]
    fn indexing_resolves_elements() {
        assert!(tail_type("fn f(xs: &[f64]) -> f64 { let v = xs[0]; v }").is_float());
        assert!(tail_type("fn f(xs: Vec<f64>) -> f64 { let v = xs[1]; v }").is_float());
    }

    #[test]
    fn arithmetic_preserves_float() {
        assert!(tail_type("fn f(a: f64, n: u64) -> f64 { let v = a * 2.0 + 1.0; v }").is_float());
    }

    #[test]
    fn float_methods_preserve() {
        assert!(tail_type("fn f(a: f64) -> f64 { let v = a.abs().sqrt(); v }").is_float());
        assert!(!tail_type("fn f(xs: &[f64]) -> usize { let n = xs.len(); n }").is_float());
    }

    #[test]
    fn sum_turbofish_resolves() {
        assert!(
            tail_type("fn f(xs: &[f64]) -> f64 { let s = xs.iter().sum::<f64>(); s }").is_float()
        );
    }

    #[test]
    fn shadowing_takes_latest_binding() {
        let src = "fn f() -> u64 { let a = 1.0; let a = 2u64; a }";
        assert!(!tail_type(src).is_float());
    }

    #[test]
    fn cast_sets_type() {
        assert!(tail_type("fn f(n: u64) -> f64 { let v = n as f64; v }").is_float());
    }
}
