//! The `flower-lint` rule engine.
//!
//! Rules operate on the token stream produced by [`crate::lexer`] plus
//! the comment trivia (for `lint:allow` directives). Test code —
//! `#[cfg(test)]` / `#[test]` items inside library sources — is masked
//! out before rules run, and each crate is classified into a *profile*
//! (deterministic library vs. exempt front-end) that selects which rule
//! families apply.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::sig::SigIndex;

/// Machine identifier for each invariant class the pass enforces.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-iteration",
        "std HashMap/HashSet in a deterministic library crate: iteration order is \
         nondeterministic across runs; use BTreeMap/BTreeSet or a sorted Vec",
    ),
    (
        "nondet-time",
        "wall-clock read (Instant::now / SystemTime::now) in a deterministic crate: \
         simulated components must take time from the virtual clock",
    ),
    (
        "nondet-rng",
        "entropy-seeded randomness (thread_rng / from_entropy / rand::random / getrandom): \
         all randomness must flow from a seeded flower_sim::SimRng",
    ),
    (
        "nondet-sleep",
        "OS-clock wait (thread::sleep / park_timeout) in a deterministic crate: retry and \
         backoff delays must be scheduled on flower_sim::SimTime, never the wall clock",
    ),
    (
        "nondet-env",
        "environment-dependent branching (std::env) in a deterministic crate: environment \
         reads belong in crates/cli or crates/bench",
    ),
    (
        "nan-partial-cmp",
        "partial_cmp(..).unwrap()/.expect(..): panics on NaN mid-optimization; use \
         f64::total_cmp or an epsilon helper from flower-stats",
    ),
    (
        "float-eq-typed",
        "exact ==/!= where type inference says either side is f64/f32: NaN-unsafe and \
         rounding-brittle; use f64::total_cmp or flower_stats::float::{approx_eq, near_zero}",
    ),
    (
        "nondet-flow",
        "a value originating at a nondeterminism source (wall clock, entropy, environment, \
         hash iteration) flows through bindings into deterministic state: a SimRng seed or \
         fork label, a flower-obs recorder event, or a field store",
    ),
    (
        "rng-provenance",
        "SimRng::seed with a literal-derived seed in library code: every stream must trace \
         to a seed parameter, config field, or parent fork so replay stays reproducible",
    ),
    (
        "panic-unwrap",
        ".unwrap() in library code: return a Result or use expect with an \
         invariant-stating message",
    ),
    (
        "panic-expect",
        ".expect(..) whose message does not state an invariant (too short to explain \
         why the value must exist)",
    ),
    (
        "panic-macro",
        "panic!/todo!/unimplemented! in library code: return an error instead",
    ),
    (
        "index-literal",
        "slice indexing by integer literal, or by a for-loop variable on a Vec<f64>/\
         &[f64], in library code: panics when the slice is short; use \
         .first()/.get(..)/.iter().zip(..) or destructuring",
    ),
    (
        "print-in-lib",
        "println!/eprintln!/print!/eprint! in a library crate: libraries report through \
         return values or the structured recorder (flower-obs), never stdout/stderr",
    ),
    (
        "serve-dep",
        "reference to flower_serve in a deterministic library crate: the live daemon is \
         an I/O shell *over* the deterministic core; depending on it inverts the layering \
         and drags sockets and wall clocks into replayable code",
    ),
    (
        "fixed-step-loop",
        "a while/loop/for body advances SimTime by a constant step every iteration (the \
         retired tick-loop shape): quiet windows cost one iteration per step; schedule \
         discrete events on flower_sim::Scheduler and let run_until jump the clock",
    ),
    (
        "allow-invalid",
        "malformed lint:allow directive: unknown rule name or missing justification",
    ),
    (
        "allow-unused",
        "stale lint:allow directive: its line produces no violation of the named rule, so \
         the suppression is dead weight and hides intent — remove it",
    ),
];

/// Which rule families a crate is subject to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Library crate feeding the simulator/optimizer: all rules apply.
    DeterministicLib,
    /// Front-end / harness crate (cli, bench, xtask): exempt from
    /// determinism and panic-freedom rules (they talk to the real world
    /// and may crash on bad CLI input).
    Exempt,
    /// Self-lint profile for `crates/xtask` (`cargo xtask lint
    /// --tooling`): only the typed rules (`float-eq-typed`,
    /// `nondet-flow`, `rng-provenance`) and the allow-hygiene rules
    /// run — the tooling crate talks to the real filesystem and may
    /// panic, but its analysis results must still be deterministic.
    Tooling,
}

/// Classify a crate by name.
pub fn profile_for(crate_name: &str) -> Profile {
    match crate_name {
        "cli" | "bench" | "xtask" | "serve" => Profile::Exempt,
        _ => Profile::DeterministicLib,
    }
}

/// One diagnostic produced by the pass.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Path as given to [`analyze`].
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A used `lint:allow` suppression, reported for audit in `--json`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule being suppressed.
    pub rule: String,
    /// Path as given to [`analyze`].
    pub file: String,
    /// 1-indexed line of the suppressed violation.
    pub line: u32,
    /// The justification text.
    pub justification: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations found (after applying justified suppressions).
    pub violations: Vec<Violation>,
    /// Suppressions that matched a violation.
    pub allows_used: Vec<AllowEntry>,
}

/// A parsed `// lint:allow(rule): justification` directive.
#[derive(Debug, Clone)]
struct AllowDirective {
    rule: String,
    justification: String,
    line: u32,
}

/// Parse every `lint:allow` directive out of the comment trivia.
/// Malformed directives are returned as violations immediately.
fn parse_allows(comments: &[Comment], file: &str) -> (Vec<AllowDirective>, Vec<Violation>) {
    let mut directives = Vec::new();
    let mut violations = Vec::new();
    for c in comments {
        // A directive must *start* the comment (after the `//`/`/*`
        // markers); prose that merely mentions the syntax mid-sentence —
        // e.g. documentation describing the allowlist — is not one.
        let trimmed = c.text.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(rest) = trimmed.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            violations.push(Violation {
                rule: "allow-invalid",
                file: file.to_owned(),
                line: c.line,
                message: "unterminated lint:allow directive".to_owned(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        let known = RULES.iter().any(|(r, _)| *r == rule);
        if !known {
            violations.push(Violation {
                rule: "allow-invalid",
                file: file.to_owned(),
                line: c.line,
                message: format!("lint:allow names unknown rule `{rule}`"),
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = after
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("")
            .to_owned();
        if justification.len() < 10 {
            violations.push(Violation {
                rule: "allow-invalid",
                file: file.to_owned(),
                line: c.line,
                message: format!(
                    "lint:allow({rule}) has no justification — write \
                     `// lint:allow({rule}): <why this is sound>`"
                ),
            });
            continue;
        }
        directives.push(AllowDirective {
            rule,
            justification,
            line: c.line,
        });
    }
    (directives, violations)
}

/// Mark tokens belonging to `#[cfg(test)]` / `#[test]` items so rules
/// skip them. Returns a mask parallel to `tokens`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            let attr_start = i;
            // Skip this attribute and any further attributes.
            let mut j = skip_attribute(tokens, i);
            while j < tokens.len() && tokens[j].text == "#" {
                j = skip_attribute(tokens, j);
            }
            // Skip the annotated item: to the matching `}` of its first
            // top-level brace, or to `;` if none appears first.
            let mut depth = 0i64;
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            for m in mask.iter_mut().take(k).skip(attr_start) {
                *m = true;
            }
            i = k;
        } else {
            i += 1;
        }
    }
    mask
}

/// Does an attribute starting at index `i` (`#`) mark test code?
/// Matches `#[test]`, `#[cfg(test)]`, and `#[cfg(all(test, ...))]` but
/// not `#[cfg(not(test))]`.
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    let inner: Vec<&str> = tokens[i + 2..]
        .iter()
        .take_while(|t| t.text != "]")
        .map(|t| t.text.as_str())
        .collect();
    match inner.as_slice() {
        ["test"] => true,
        ["cfg", "(", "test", ")"] => true,
        ["cfg", "(", "all", "(", "test", rest @ ..] => !rest.is_empty(),
        _ => false,
    }
}

/// Index just past the `]` closing the attribute starting at `i`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Rules whose `lint:allow` also stops determinism *taint* from
/// seeding at the allowed line: a justified source must not cascade
/// into `nondet-flow` reports downstream.
const SOURCE_RULES: &[&str] = &["nondet-time", "nondet-rng", "nondet-env", "hash-iteration"];

/// Phase 1 of the typed pipeline: extract one file's signature
/// contribution (fn returns, struct fields, const types, taint
/// summaries). Runs over *every* crate — exempt ones included, since
/// their return types can still resolve calls — but only
/// `taint_eligible` (non-exempt) crates contribute taint edges.
/// Sources behind a justified `lint:allow` do not seed taint.
pub fn collect_signatures(src: &str, taint_eligible: bool) -> crate::sig::FileSigs {
    let (tokens, comments) = lex(src);
    let (allows, _) = parse_allows(&comments, "");
    let suppressed: BTreeSet<u32> = allows
        .iter()
        .filter(|a| SOURCE_RULES.contains(&a.rule.as_str()))
        .flat_map(|a| [a.line, a.line + 1])
        .collect();
    let ast = crate::parse::parse_tokens(&tokens);
    crate::sig::collect_file(&ast, &suppressed, taint_eligible)
}

/// Analyze one file's source.
///
/// `crate_name` is the workspace member directory name (`core`,
/// `nsga2`, ...), used to select the rule [`Profile`]. `idx` is the
/// merged workspace signature index from phase 1 (an empty index
/// degrades the typed rules to local inference only).
pub fn analyze(file: &str, crate_name: &str, src: &str, idx: &SigIndex) -> FileReport {
    analyze_with_profile(file, profile_for(crate_name), src, idx)
}

/// [`analyze`] with an explicit profile (`--tooling` overrides the
/// name-based classification to self-lint `crates/xtask`).
pub fn analyze_with_profile(file: &str, profile: Profile, src: &str, idx: &SigIndex) -> FileReport {
    // Exempt crates (cli, bench, xtask) are not scanned at all — their
    // comments may legitimately *describe* the directive syntax (this
    // file does), so allow parsing is skipped there too.
    if profile == Profile::Exempt {
        return FileReport::default();
    }
    let (tokens, comments) = lex(src);
    let (allows, mut pre_violations) = parse_allows(&comments, file);
    let mask = test_mask(&tokens);

    let mut raw = Vec::new();
    if profile == Profile::DeterministicLib {
        scan_tokens(file, &tokens, &mask, &mut raw);
    }

    // Typed passes: parse, then run inference + taint over the AST.
    // Test items carry `is_test` flags from the parser, mirroring the
    // token mask the lexical rules use.
    let ast = crate::parse::parse_tokens(&tokens);
    let source_allowed: BTreeSet<u32> = allows
        .iter()
        .filter(|a| SOURCE_RULES.contains(&a.rule.as_str()))
        .flat_map(|a| [a.line, a.line + 1])
        .collect();
    for finding in crate::flow::check_file(&ast, idx, &source_allowed) {
        raw.push(Violation {
            rule: finding.rule,
            file: file.to_owned(),
            line: finding.line,
            message: finding.message,
        });
    }

    let mut report = FileReport::default();
    report.violations.append(&mut pre_violations);

    // Apply suppressions: a directive on the violation's line or the
    // line immediately above it suppresses that rule there.
    let mut used = vec![false; allows.len()];
    for v in raw {
        let suppressed = allows
            .iter()
            .position(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line));
        if let Some(i) = suppressed {
            used[i] = true;
            let a = &allows[i];
            report.allows_used.push(AllowEntry {
                rule: a.rule.clone(),
                file: file.to_owned(),
                line: v.line,
                justification: a.justification.clone(),
            });
        } else {
            report.violations.push(v);
        }
    }
    // Stale-allow detection: a well-formed directive that suppressed
    // nothing is itself a violation.
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            report.violations.push(Violation {
                rule: "allow-unused",
                file: file.to_owned(),
                line: a.line,
                message: format!(
                    "lint:allow({}) matched no violation of that rule — remove the \
                     stale directive",
                    a.rule
                ),
            });
        }
    }
    report
}

/// Names annotated as `Vec<f64>` or `&[f64]` (including `&mut [f64]`
/// and lifetime-qualified references) anywhere in the file. The
/// indexed-loop extension of `index-literal` only fires on these: a
/// lexical pass cannot infer types, but float-slice annotations on
/// `let` bindings and parameters are where the hot numeric loops live.
fn f64_sequence_names(tokens: &[Token]) -> Vec<String> {
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || text(i + 1) != ":" {
            continue;
        }
        // Skip reference/mut/lifetime prefixes in the type position.
        let mut j = i + 2;
        while text(j) == "&"
            || text(j) == "mut"
            || tokens.get(j).is_some_and(|t| t.kind == TokKind::Lifetime)
        {
            j += 1;
        }
        let slice = text(j) == "[" && text(j + 1) == "f64" && text(j + 2) == "]";
        let vec =
            text(j) == "Vec" && text(j + 1) == "<" && text(j + 2) == "f64" && text(j + 3) == ">";
        if (slice || vec) && !names.contains(&t.text) {
            names.push(t.text.clone());
        }
    }
    names
}

/// Names bound to a literal-argument `SimDuration` constructor —
/// `let step = SimDuration::from_secs(1)` or `const STEP: SimDuration =
/// SimDuration::from_mins(5)`. The `fixed-step-loop` rule treats
/// `t += step` inside a loop the same as the inline constructor: both
/// advance the clock by a compile-time constant per iteration.
fn const_duration_names(tokens: &[Token]) -> Vec<String> {
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "let" && t.text != "const" {
            continue;
        }
        let mut j = i + 1;
        if text(j) == "mut" {
            j += 1;
        }
        let Some(name) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let mut k = j + 1;
        if text(k) == ":" && text(k + 1) == "SimDuration" {
            k += 2;
        }
        if text(k) == "=" && is_const_duration_call(tokens, k + 1) && !names.contains(&name.text) {
            names.push(name.text.clone());
        }
    }
    names
}

/// Does a `SimDuration::from_*(<numeric literal>)` call start at `i`?
fn is_const_duration_call(tokens: &[Token], i: usize) -> bool {
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    text(i) == "SimDuration"
        && text(i + 1) == "::"
        && text(i + 2).starts_with("from_")
        && text(i + 3) == "("
        && tokens
            .get(i + 4)
            .is_some_and(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
        && text(i + 5) == ")"
}

/// Run every token-pattern rule over non-test tokens.
fn scan_tokens(file: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    let kind = |i: usize| tokens.get(i).map(|t| t.kind.clone());
    let emit = |out: &mut Vec<Violation>, rule: &'static str, line: u32, message: String| {
        out.push(Violation {
            rule,
            file: file.to_owned(),
            line,
            message,
        });
    };

    let f64_seqs = f64_sequence_names(tokens);
    let const_durs = const_duration_names(tokens);
    // `for`-loop variables currently in scope, each with the brace depth
    // of its loop body. A `for i in ..` records a pending variable that
    // activates at the next `{` and retires when that brace closes.
    // Masked (test) spans are brace-balanced and skipped wholesale, so
    // depth stays consistent across them.
    let mut loop_vars: Vec<(String, i64)> = Vec::new();
    let mut pending_loop_var: Option<String> = None;
    // Brace depths of `while`/`loop`/`for` bodies currently open, for
    // the `fixed-step-loop` rule: the keyword arms a pending marker
    // that lands at the next `{` and retires when that brace closes.
    let mut loop_depths: Vec<i64> = Vec::new();
    let mut pending_loop = false;
    let mut depth = 0i64;

    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(name) = pending_loop_var.take() {
                        loop_vars.push((name, depth));
                    }
                    if pending_loop {
                        pending_loop = false;
                        loop_depths.push(depth);
                    }
                }
                "}" => {
                    loop_vars.retain(|(_, d)| *d < depth);
                    loop_depths.retain(|d| *d < depth);
                    depth -= 1;
                }
                _ => {}
            }
        }
        // --- event discipline: fixed-step clock advances in loops ---
        // `t += SimDuration::from_secs(1)` or `t = t + step` (with
        // `step` a literal-constructed SimDuration) inside a loop body
        // is the retired tick-loop shape.
        if t.kind == TokKind::Ident && !loop_depths.is_empty() {
            let plus_assign = text(i + 1) == "+=";
            let self_add = text(i + 1) == "=" && text(i + 2) == t.text && text(i + 3) == "+";
            let rhs = if plus_assign { i + 2 } else { i + 4 };
            if (plus_assign || self_add)
                && (is_const_duration_call(tokens, rhs)
                    || (kind(rhs) == Some(TokKind::Ident)
                        && text(rhs + 1) == ";"
                        && const_durs.iter().any(|n| n == text(rhs))))
            {
                emit(
                    out,
                    "fixed-step-loop",
                    t.line,
                    format!(
                        "`{}` advances by a constant duration every loop iteration; \
                         schedule an event on flower_sim::Scheduler instead of \
                         stepping the clock on a fixed grid",
                        t.text
                    ),
                );
            }
        }
        // Float comparisons are handled by the typed pass
        // (`float-eq-typed` in `crate::flow`), which sees literal
        // comparisons *and* `a == b` on two inferred-float bindings —
        // the case a lexical rule provably misses.
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                // --- determinism: hashed containers ---
                "HashMap" | "HashSet" => {
                    // Skip `use std::collections::{...}` re-exports no —
                    // flag those too: importing is the gateway.
                    emit(
                        out,
                        "hash-iteration",
                        t.line,
                        format!("`{}` in deterministic library code", t.text),
                    );
                }
                // --- determinism: wall clock ---
                "Instant" | "SystemTime" if text(i + 1) == "::" && text(i + 2) == "now" => {
                    emit(
                        out,
                        "nondet-time",
                        t.line,
                        format!("`{}::now()` reads the wall clock", t.text),
                    );
                }
                // --- determinism: OS-clock waits ---
                "thread"
                    if text(i + 1) == "::"
                        && matches!(text(i + 2), "sleep" | "sleep_ms" | "park_timeout") =>
                {
                    emit(
                        out,
                        "nondet-sleep",
                        t.line,
                        format!("`thread::{}` waits on the OS clock", text(i + 2)),
                    );
                }
                // --- layering: the daemon shell is downstream-only ---
                "flower_serve" => {
                    emit(
                        out,
                        "serve-dep",
                        t.line,
                        "`flower_serve` referenced from deterministic library code".into(),
                    );
                }
                // --- determinism: entropy ---
                "thread_rng" | "from_entropy" | "getrandom" => {
                    emit(
                        out,
                        "nondet-rng",
                        t.line,
                        format!("`{}` draws OS entropy", t.text),
                    );
                }
                "rand" if text(i + 1) == "::" && text(i + 2) == "random" => {
                    emit(
                        out,
                        "nondet-rng",
                        t.line,
                        "`rand::random` draws OS entropy".into(),
                    );
                }
                // --- determinism: environment ---
                "env"
                    if text(i + 1) == "::"
                        && matches!(
                            text(i + 2),
                            "var" | "var_os" | "vars" | "args" | "args_os"
                        ) =>
                {
                    emit(
                        out,
                        "nondet-env",
                        t.line,
                        format!("`env::{}` branches on the environment", text(i + 2)),
                    );
                }
                // --- NaN safety: partial_cmp().unwrap()/expect() ---
                "partial_cmp" if text(i + 1) == "(" => {
                    if let Some(j) = matching_paren(tokens, i + 1) {
                        if text(j + 1) == "." && matches!(text(j + 2), "unwrap" | "expect") {
                            emit(
                                out,
                                "nan-partial-cmp",
                                t.line,
                                format!(
                                    "`partial_cmp(..).{}()` panics on NaN; use f64::total_cmp",
                                    text(j + 2)
                                ),
                            );
                        }
                    }
                }
                // --- panic freedom: unwrap / weak expect ---
                "unwrap"
                    if text(i + 1) == "("
                        && text(i + 2) == ")"
                        && text(i.wrapping_sub(1)) == "." =>
                {
                    emit(
                        out,
                        "panic-unwrap",
                        t.line,
                        "`.unwrap()` in library code".into(),
                    );
                }
                "expect" if text(i + 1) == "(" && text(i.wrapping_sub(1)) == "." => {
                    if kind(i + 2) == Some(TokKind::Str) && text(i + 3) == ")" {
                        let msg = text(i + 2).trim_matches('"');
                        if msg.len() < 12 || !msg.contains(' ') {
                            emit(
                                out,
                                "panic-expect",
                                t.line,
                                format!("`.expect(\"{msg}\")` message does not state an invariant"),
                            );
                        }
                    }
                }
                // --- observability: ad-hoc console output ---
                "println" | "eprintln" | "print" | "eprint" if text(i + 1) == "!" => {
                    emit(
                        out,
                        "print-in-lib",
                        t.line,
                        format!("`{}!` writes to the console from library code", t.text),
                    );
                }
                // --- panic freedom: macros ---
                "panic" | "todo" | "unimplemented" if text(i + 1) == "!" => {
                    emit(
                        out,
                        "panic-macro",
                        t.line,
                        format!("`{}!` in library code", t.text),
                    );
                }
                // --- panic freedom: indexed loops over float slices ---
                "for" if kind(i + 1) == Some(TokKind::Ident) && text(i + 2) == "in" => {
                    pending_loop_var = Some(text(i + 1).to_owned());
                    pending_loop = true;
                }
                // --- event discipline: arm the loop-body marker ---
                // (`for<'a>` higher-ranked bounds are not loops)
                "while" | "loop" | "for" if text(i + 1) != "<" => {
                    pending_loop = true;
                }
                // --- panic freedom: indexing by literal or loop var ---
                _ => {
                    if text(i + 1) == "["
                        && kind(i + 2) == Some(TokKind::Int)
                        && text(i + 3) == "]"
                        && t.text != "self"
                    {
                        emit(
                            out,
                            "index-literal",
                            t.line,
                            format!("`{}[{}]` indexes by literal", t.text, text(i + 2)),
                        );
                    } else if text(i + 1) == "["
                        && kind(i + 2) == Some(TokKind::Ident)
                        && text(i + 3) == "]"
                        && loop_vars.iter().any(|(n, _)| n == text(i + 2))
                        && f64_seqs.iter().any(|n| n == &t.text)
                    {
                        emit(
                            out,
                            "index-literal",
                            t.line,
                            format!(
                                "`{0}[{1}]` subscripts a float sequence by its loop \
                                 variable; iterate with .iter().zip(..) or use .get({1})",
                                t.text,
                                text(i + 2)
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Aggregate per-rule counts for the summary line.
pub fn count_by_rule(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        let report = analyze("fixture.rs", "core", src, &SigIndex::default());
        report.violations.iter().map(|v| v.rule).collect()
    }

    fn analyze_no_idx(file: &str, crate_name: &str, src: &str) -> FileReport {
        analyze(file, crate_name, src, &SigIndex::default())
    }

    #[test]
    fn catches_hash_iteration() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }"),
            vec!["hash-iteration", "hash-iteration", "hash-iteration"]
        );
    }

    #[test]
    fn catches_wall_clock_and_entropy_and_env() {
        let src = r#"
            fn f() {
                let t = Instant::now();
                let s = std::time::SystemTime::now();
                let r = rand::thread_rng();
                let x = rand::random::<f64>();
                let home = std::env::var("HOME");
            }
        "#;
        let hits = rules_hit(src);
        assert_eq!(
            hits,
            vec![
                "nondet-time",
                "nondet-time",
                "nondet-rng",
                "nondet-rng",
                "nondet-env"
            ]
        );
    }

    #[test]
    fn forbids_serve_dependencies_in_deterministic_crates() {
        // The inverted layering the rule exists to catch: a
        // deterministic crate importing the daemon shell.
        let src =
            "use flower_serve::Daemon;\nfn f() { let d = flower_serve::ServeConfig::default(); }";
        assert_eq!(rules_hit(src), vec!["serve-dep", "serve-dep"]);
        // The serve crate itself is Exempt, as are the front ends.
        for exempt in ["serve", "cli", "bench", "xtask"] {
            assert!(
                analyze_no_idx("fixture.rs", exempt, src)
                    .violations
                    .is_empty(),
                "`{exempt}` must be exempt from serve-dep"
            );
        }
        // Mentioning the crate in a comment is fine.
        assert!(rules_hit("// flower_serve is downstream of this crate\nfn f() {}").is_empty());
    }

    #[test]
    fn catches_os_clock_sleeps() {
        let src = r#"
            fn backoff_badly(attempt: u32) {
                std::thread::sleep(std::time::Duration::from_secs(1 << attempt));
                thread::sleep(Duration::from_millis(50));
                std::thread::park_timeout(Duration::from_secs(1));
            }
        "#;
        assert_eq!(
            rules_hit(src),
            vec!["nondet-sleep", "nondet-sleep", "nondet-sleep"]
        );
        // Sim-clock waits and test code are clean.
        assert!(
            rules_hit("fn f(rng: &mut SimRng) { let due = now + config.backoff(1); }").is_empty()
        );
        let test_src = "#[cfg(test)]\nmod tests { fn t() { std::thread::sleep(Duration::ZERO); } }";
        assert!(rules_hit(test_src).is_empty());
        // Exempt crates (cli/bench/xtask) may sleep.
        let report = analyze_no_idx(
            "bench.rs",
            "bench",
            "fn f() { std::thread::sleep(Duration::ZERO); }",
        );
        assert!(report.violations.is_empty());
    }

    #[test]
    fn thread_spawn_and_joins_are_not_sleeps() {
        let src = r#"
            fn f() {
                let h = std::thread::spawn(|| 1u64);
                let _ = h.join();
                std::thread::park();
            }
        "#;
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn catches_nan_unsafe_comparisons() {
        let src = r#"
            fn f(xs: &mut [f64], y: f64) {
                xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                if y == 0.5 { }
                if 1.5 != y { }
            }
        "#;
        let hits = rules_hit(src);
        // partial_cmp violations also trip panic-unwrap/panic-expect.
        assert!(hits.iter().filter(|r| **r == "nan-partial-cmp").count() == 2);
        assert!(hits.iter().filter(|r| **r == "float-eq-typed").count() == 2);
    }

    #[test]
    fn catches_panics_and_literal_indexing() {
        let src = r#"
            fn f(xs: &[u64]) -> u64 {
                let a = xs.first().unwrap();
                let b = xs.last().expect("short");
                if xs.is_empty() { panic!("empty"); }
                let c = xs[0];
                todo!()
            }
        "#;
        let hits = rules_hit(src);
        assert!(hits.contains(&"panic-unwrap"));
        assert!(hits.contains(&"panic-expect"));
        assert!(hits.iter().filter(|r| **r == "panic-macro").count() == 2);
        assert!(hits.contains(&"index-literal"));
    }

    #[test]
    fn catches_console_prints_in_library_code() {
        let src = r#"
            fn f(x: u64) {
                println!("x = {x}");
                eprintln!("warning");
                print!("partial");
                eprint!("partial err");
            }
        "#;
        assert_eq!(
            rules_hit(src),
            vec![
                "print-in-lib",
                "print-in-lib",
                "print-in-lib",
                "print-in-lib"
            ]
        );
        // Test code and exempt crates keep their prints.
        let test_src = "#[cfg(test)]\nmod tests { fn t() { println!(\"dbg\"); } }";
        assert!(rules_hit(test_src).is_empty());
        let report = analyze_no_idx("cli.rs", "cli", "fn f() { println!(\"hi\"); }");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn invariant_stating_expect_is_allowed() {
        let src = r#"fn f(xs: &[u64]) -> u64 { *xs.last().expect("population is never empty after init") }"#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            fn lib() -> u64 { 1 }

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let m = std::collections::HashMap::<u32, u32>::new();
                    assert_eq!(m.len(), 0);
                    let x: Option<u32> = None;
                    x.unwrap();
                }
            }
        "#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
            #[cfg(not(test))]
            fn lib() { let x: Option<u32> = None; x.unwrap(); }
        "#;
        assert_eq!(rules_hit(src), vec!["panic-unwrap"]);
    }

    #[test]
    fn exempt_profile_skips_determinism_rules() {
        let src = "fn f() { let t = Instant::now(); let x: Option<u32> = None; x.unwrap(); }";
        let report = analyze_no_idx("cli.rs", "cli", src);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            // HashMap::new() and Instant::now() in a comment
            /* thread_rng() too */
            fn f() -> &'static str { "HashMap unwrap() panic! == 1.0" }
        "#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses() {
        let src = r#"
            // lint:allow(hash-iteration): membership-only set, never iterated
            use std::collections::HashSet;
        "#;
        let report = analyze_no_idx("fixture.rs", "core", src);
        assert!(report.violations.is_empty());
        assert_eq!(report.allows_used.len(), 1);
        assert_eq!(report.allows_used[0].rule, "hash-iteration");
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "use std::collections::HashSet; // lint:allow(hash-iteration): membership-only set, never iterated\n";
        let report = analyze_no_idx("fixture.rs", "core", src);
        assert!(report.violations.is_empty());
        assert_eq!(report.allows_used.len(), 1);
    }

    #[test]
    fn unjustified_allow_is_a_violation() {
        let src = r#"
            // lint:allow(hash-iteration)
            use std::collections::HashSet;
        "#;
        let report = analyze_no_idx("fixture.rs", "core", src);
        // An unjustified allow must not silence the underlying finding:
        // both the bad allow and the real violation are reported.
        assert_eq!(
            report.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec!["allow-invalid", "hash-iteration"]
        );
    }

    #[test]
    fn prose_mention_of_allow_syntax_is_not_a_directive() {
        let src =
            "//! Suppress with a justified `lint:allow(float-eq-typed)` comment.\nfn f() {}\n";
        let report = analyze_no_idx("fixture.rs", "core", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.allows_used.is_empty());
    }

    #[test]
    fn unknown_rule_allow_is_a_violation() {
        let src = "// lint:allow(no-such-rule): this rule does not exist\nfn f() {}\n";
        let report = analyze_no_idx("fixture.rs", "core", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "allow-invalid");
    }

    #[test]
    fn allow_does_not_leak_to_other_lines() {
        let src = r#"
            // lint:allow(panic-unwrap): only suppresses the next line
            fn a(x: Option<u32>) -> u32 { x.unwrap() }
            fn b(x: Option<u32>) -> u32 { x.unwrap() }
        "#;
        let report = analyze_no_idx("fixture.rs", "core", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.allows_used.len(), 1);
    }

    #[test]
    fn catches_loop_variable_indexing_of_float_slices() {
        let src = r#"
            fn dot(xs: &[f64], ys: &'a mut [f64], zs: Vec<f64>) -> f64 {
                let mut acc = 0.0;
                for i in 0..xs.len() {
                    acc += xs[i] * ys[i] + zs[i];
                }
                acc
            }
        "#;
        let hits = rules_hit(src);
        assert_eq!(
            hits.iter().filter(|r| **r == "index-literal").count(),
            3,
            "hits: {hits:?}"
        );
    }

    #[test]
    fn loop_indexing_requires_a_float_sequence_and_a_loop_var() {
        let src = r#"
            fn f(ids: &[u64], ws: Vec<f64>) -> f64 {
                for i in 0..ids.len() {
                    let _ = ids[i]; // not f64: clean
                }
                let j = 2usize;
                ws[j] // not a loop variable: clean
            }
        "#;
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn loop_variable_scope_ends_with_the_loop_body() {
        let src = r#"
            fn f(xs: Vec<f64>, i: usize) -> f64 {
                for i in 0..3 {
                    let _ = i;
                }
                xs[i]
            }
        "#;
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn self_indexing_is_not_flagged() {
        // Tuple-struct field access `self.0` and newtype indexing look
        // different at token level; only `ident [ int ]` fires.
        assert!(rules_hit("impl X { fn g(&self) -> u64 { self.0 } }").is_empty());
    }

    #[test]
    fn catches_fixed_step_loops() {
        // The retired tick-loop shape, in each spelling the rule knows.
        let src = r#"
            fn run(end: SimTime) {
                let mut now = SimTime::ZERO;
                while now < end {
                    step(now);
                    now += SimDuration::from_secs(1);
                }
            }
            fn drain(mut t: SimTime, end: SimTime) {
                let dt = SimDuration::from_millis(500);
                loop {
                    if t >= end { break; }
                    t += dt;
                }
            }
            fn sweep(mut t: SimTime) {
                for _round in 0..60 {
                    t = t + SimDuration::from_mins(1);
                }
            }
        "#;
        let hits = rules_hit(src);
        assert_eq!(
            hits.iter().filter(|r| **r == "fixed-step-loop").count(),
            3,
            "hits: {hits:?}"
        );
    }

    #[test]
    fn event_driven_advances_are_not_fixed_step_loops() {
        // Negative fixtures: advancing to a *computed* instant, constant
        // steps outside any loop, and non-time arithmetic in loops.
        let src = r#"
            fn run_until(sched: &mut Scheduler, until: SimTime) {
                while let Some(at) = sched.next_event_time() {
                    if at > until { break; }
                    sched.step();
                }
            }
            fn schedule_next(t: SimTime) -> SimTime {
                t + SimDuration::from_secs(1)
            }
            fn vary(mut t: SimTime, period: SimDuration, end: SimTime) {
                while t < end {
                    t += period;
                }
            }
            fn count(mut n: u64) {
                for _ in 0..4 {
                    n += 1;
                }
            }
        "#;
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn justified_allow_suppresses_fixed_step_loop() {
        let src = r#"
            fn roll_day(day_start: &mut SimTime, now: SimTime) {
                while now.since(*day_start) >= SimDuration::from_hours(24) {
                    // lint:allow(fixed-step-loop): day-boundary catch-up, bounded by elapsed days
                    *day_start += SimDuration::from_hours(24);
                }
            }
        "#;
        let report = analyze_no_idx("fixture.rs", "cloud", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows_used.len(), 1);
        assert_eq!(report.allows_used[0].rule, "fixed-step-loop");
    }

    #[test]
    fn every_rule_has_distinct_name_and_description() {
        let mut names: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULES.len());
        assert!(RULES.len() >= 6, "acceptance: >= 6 invariant classes");
    }
}
