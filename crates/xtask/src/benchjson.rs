//! Minimal JSON parsing + schema validation for `BENCH_*.json`.
//!
//! The workspace is dependency-free, so this is a small hand-rolled
//! recursive-descent parser covering exactly the JSON subset the bench
//! binaries emit (objects, arrays, strings, finite numbers, booleans,
//! null). It exists so `cargo xtask bench --smoke` can gate CI on the
//! *shape* of the baseline without gating on timings.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub(crate) fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub(crate) fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for debugging.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar starting at *pos.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".to_owned());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Validate a `BENCH_nsga2.json` document against the v2 schema:
/// required top-level fields, non-empty `results` with finite positive
/// timings (including the `replan_*` and `event_core_*` row families),
/// and `comparisons`
/// whose names reference real results. Returns a human summary on
/// success; comparisons whose measured direction contradicts the
/// promise in their name (`_speedup` / `_overhead` / `_vs_` names
/// promise baseline ≥ candidate) are flagged as `warning:` lines in
/// that summary rather than failing validation — honest sub-1×
/// numbers on a single-core host are data, not schema errors.
pub fn validate_bench_json(text: &str) -> Result<String, String> {
    let root = parse(text)?;
    let obj = root.as_obj().ok_or("top level is not an object")?;

    let schema = obj
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string field `schema`")?;
    if schema != "flower-bench/nsga2/v2" {
        return Err(format!(
            "unknown schema `{schema}` (expected flower-bench/nsga2/v2)"
        ));
    }
    let smoke = matches!(obj.get("smoke"), Some(Value::Bool(true)));
    if !matches!(obj.get("smoke"), Some(Value::Bool(_))) {
        return Err("missing boolean field `smoke`".to_owned());
    }
    for key in ["cores", "workers", "seed"] {
        let n = obj
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("missing numeric field `{key}`"))?;
        if !(n.is_finite() && n >= 0.0) {
            return Err(format!("field `{key}` must be a non-negative number"));
        }
    }

    let results = obj
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing array field `results`")?;
    if results.is_empty() {
        return Err("`results` is empty".to_owned());
    }
    let mut names = Vec::new();
    for (i, r) in results.iter().enumerate() {
        let r = r
            .as_obj()
            .ok_or_else(|| format!("results[{i}] is not an object"))?;
        let name = r
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("results[{i}] missing `name`"))?;
        for key in ["median_ns", "mean_ns", "samples", "iters_per_sample"] {
            let n = r
                .get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("results[{i}] ({name}) missing numeric `{key}`"))?;
            if !(n.is_finite() && n > 0.0) {
                return Err(format!(
                    "results[{i}] ({name}) `{key}` must be finite and positive"
                ));
            }
        }
        names.push(name.to_owned());
    }
    if !names.iter().any(|n| n.starts_with("replan_")) {
        return Err("`results` has no `replan_*` row (warm-start family missing)".to_owned());
    }
    if !names.iter().any(|n| n.starts_with("event_core_")) {
        return Err(
            "`results` has no `event_core_*` row (event-driven episode family missing)".to_owned(),
        );
    }

    let comparisons = obj
        .get("comparisons")
        .and_then(Value::as_arr)
        .ok_or("missing array field `comparisons`")?;
    let mut warnings: Vec<String> = Vec::new();
    for (i, c) in comparisons.iter().enumerate() {
        let c = c
            .as_obj()
            .ok_or_else(|| format!("comparisons[{i}] is not an object"))?;
        for key in ["name", "baseline", "candidate"] {
            c.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("comparisons[{i}] missing string `{key}`"))?;
        }
        for key in ["baseline", "candidate"] {
            let target = c.get(key).and_then(Value::as_str).unwrap_or_default();
            if !names.iter().any(|n| n == target) {
                return Err(format!(
                    "comparisons[{i}] `{key}` references unknown result `{target}`"
                ));
            }
        }
        let speedup = c
            .get("speedup")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("comparisons[{i}] missing numeric `speedup`"))?;
        if !(speedup.is_finite() && speedup > 0.0) {
            return Err(format!(
                "comparisons[{i}] `speedup` must be finite and positive"
            ));
        }
        // Directional names promise baseline ≥ candidate. Flag (don't
        // fail) clear contradictions; 0.9 leaves headroom for the ~1x
        // noise of parallel rows on single-core hosts.
        let name = c.get("name").and_then(Value::as_str).unwrap_or_default();
        let directional =
            name.ends_with("_speedup") || name.ends_with("_overhead") || name.contains("_vs_");
        if directional && speedup < 0.9 {
            warnings.push(format!(
                "warning: comparison `{name}` is {speedup:.2}x — direction contradicts its name"
            ));
        }
    }
    if !comparisons
        .iter()
        .filter_map(|c| c.as_obj())
        .filter_map(|c| c.get("name").and_then(Value::as_str))
        .any(|n| n == "replan_warm_vs_cold")
    {
        return Err("missing `replan_warm_vs_cold` comparison".to_owned());
    }

    let mut summary = format!(
        "{} result(s), {} comparison(s){}",
        results.len(),
        comparisons.len(),
        if smoke { ", smoke mode" } else { "" }
    );
    for w in &warnings {
        summary.push('\n');
        summary.push_str(w);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "schema": "flower-bench/nsga2/v2",
      "smoke": true,
      "cores": 4, "workers": 4, "seed": 2017,
      "note": "n/a",
      "results": [
        {"name": "replan_cold", "median_ns": 10.5, "mean_ns": 11.0, "samples": 5, "iters_per_sample": 3},
        {"name": "replan_warm", "median_ns": 20.0, "mean_ns": 21.0, "samples": 5, "iters_per_sample": 3},
        {"name": "event_core_tick_compat", "median_ns": 50.0, "mean_ns": 51.0, "samples": 5, "iters_per_sample": 1},
        {"name": "event_core_fast_forward", "median_ns": 4.0, "mean_ns": 4.1, "samples": 5, "iters_per_sample": 1}
      ],
      "comparisons": [
        {"name": "replan_warm_vs_cold", "baseline": "replan_cold", "candidate": "replan_warm", "speedup": 1.9},
        {"name": "event_core_fast_forward_speedup", "baseline": "event_core_tick_compat", "candidate": "event_core_fast_forward", "speedup": 12.5}
      ]
    }"#;

    #[test]
    fn good_document_validates() {
        let summary = validate_bench_json(GOOD).unwrap();
        assert!(summary.contains("4 result(s)"), "{summary}");
        assert!(summary.contains("smoke mode"), "{summary}");
        assert!(!summary.contains("warning"), "{summary}");
    }

    #[test]
    fn contradicting_direction_is_flagged_not_fatal() {
        let doc = GOOD.replace("\"speedup\": 1.9", "\"speedup\": 0.865");
        let summary = validate_bench_json(&doc).unwrap();
        assert!(
            summary.contains("warning: comparison `replan_warm_vs_cold` is 0.86x"),
            "{summary}"
        );
    }

    #[test]
    fn near_parity_is_not_flagged() {
        // 0.978x parallel-sort parity on a 1-core host is data, not an
        // inversion worth flagging.
        let doc = GOOD.replace("\"speedup\": 1.9", "\"speedup\": 0.978");
        let summary = validate_bench_json(&doc).unwrap();
        assert!(!summary.contains("warning"), "{summary}");
    }

    #[test]
    fn missing_replan_rows_are_rejected() {
        let doc = GOOD
            .replace("replan_cold", "other_a")
            .replace("replan_warm_vs_cold", "other_a_vs_b")
            .replace("replan_warm", "other_b");
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("no `replan_*` row"), "{err}");
    }

    #[test]
    fn missing_event_core_rows_are_rejected() {
        let doc = GOOD
            .replace("event_core_tick_compat", "other_compat")
            .replace("event_core_fast_forward_speedup", "other_ff_speedup")
            .replace("event_core_fast_forward", "other_ff");
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("no `event_core_*` row"), "{err}");
    }

    #[test]
    fn missing_warm_vs_cold_comparison_is_rejected() {
        let doc = GOOD.replace("replan_warm_vs_cold", "replan_some_other");
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("replan_warm_vs_cold"), "{err}");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse(r#"{"k": ["a\n\"b\"", {"n": -1.5e3}, null, false]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_str(), Some("a\n\"b\""));
        assert_eq!(
            arr[1].as_obj().unwrap().get("n").unwrap().as_num(),
            Some(-1_500.0)
        );
        assert_eq!(arr[2], Value::Null);
        assert_eq!(arr[3], Value::Bool(false));
    }

    #[test]
    fn bad_documents_are_rejected() {
        for (doc, why) in [
            ("[]", "top level"),
            (r#"{"schema": "other/v9"}"#, "unknown schema"),
            (r#"{"schema": "flower-bench/nsga2/v1"}"#, "unknown schema"),
            (
                r#"{"schema": "flower-bench/nsga2/v2", "smoke": false,
                    "cores": 1, "workers": 1, "seed": 0,
                    "results": [], "comparisons": []}"#,
                "`results` is empty",
            ),
            (
                r#"{"schema": "flower-bench/nsga2/v2", "smoke": false,
                    "cores": 1, "workers": 1, "seed": 0,
                    "results": [{"name": "replan_a", "median_ns": 1, "mean_ns": 1,
                                 "samples": 1, "iters_per_sample": 1},
                                {"name": "event_core_a", "median_ns": 1, "mean_ns": 1,
                                 "samples": 1, "iters_per_sample": 1}],
                    "comparisons": [{"name": "x", "baseline": "ghost",
                                     "candidate": "replan_a", "speedup": 2.0}]}"#,
                "unknown result",
            ),
        ] {
            let err = validate_bench_json(doc).unwrap_err();
            assert!(err.contains(why), "`{err}` should mention `{why}`");
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
