// Test target: unwrap/expect are deliberate here (fixture setup and
// process spawning fail loudly or not at all).
#![allow(clippy::unwrap_used, clippy::expect_used)]
//! End-to-end tests for the typed lint rules, driven through the real
//! `xtask` binary: a fixture workspace exercises each rule's
//! true-positive and true-negative sides, and the determinism pin
//! asserts `lint --json` output is byte-identical across runs and
//! worker counts.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_xtask")
}

/// Create a throwaway workspace `<tmp>/crates/<crate>/src/lib.rs` per
/// (crate-name, source) pair and return its root. Crate names matter:
/// lint profiles are keyed on them, so fixtures use a deterministic-lib
/// name (anything not in the exempt list).
struct FixtureWs {
    root: PathBuf,
}

impl FixtureWs {
    fn new(tag: &str, files: &[(&str, &str)]) -> FixtureWs {
        let root =
            std::env::temp_dir().join(format!("flower-lint-fixture-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for (krate, src) in files {
            let dir = root.join("crates").join(krate).join("src");
            fs::create_dir_all(&dir).expect("fixture dir");
            fs::write(dir.join("lib.rs"), src).expect("fixture file");
        }
        FixtureWs { root }
    }

    fn lint(&self) -> Output {
        Command::new(bin())
            .args(["lint", "--json", "--root"])
            .arg(&self.root)
            .output()
            .expect("xtask runs")
    }
}

impl Drop for FixtureWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 report")
}

#[test]
fn float_eq_typed_catches_the_lexically_invisible_case() {
    // The acceptance fixture: two f64 *bindings* compared — no literal
    // anywhere near the `==`, so the old token rule provably missed it.
    let ws = FixtureWs::new(
        "floateq",
        &[(
            "fixture",
            r#"
pub fn other_f64() -> f64 {
    1.5
}

pub fn check(x: f64) -> bool {
    let a: f64 = x;
    let b = other_f64();
    a == b
}
"#,
        )],
    );
    let out = ws.lint();
    let report = stdout_of(&out);
    assert!(
        report.contains("\"rule\": \"float-eq-typed\""),
        "expected float-eq-typed in report:\n{report}"
    );
    assert!(!out.status.success(), "violations must fail the lint");
}

#[test]
fn nondet_flow_and_rng_provenance_fire_through_bindings() {
    let ws = FixtureWs::new(
        "flow",
        &[(
            "fixture",
            r#"
pub struct SimRng(u64);

impl SimRng {
    pub fn seed(s: u64) -> SimRng {
        SimRng(s)
    }
}

pub fn bad_seed() -> SimRng {
    let t = Instant::now().elapsed().as_nanos() as u64;
    let s = t + 1;
    SimRng::seed(s)
}

pub fn literal_seed() -> SimRng {
    SimRng::seed(42)
}

pub fn good_seed(seed: u64) -> SimRng {
    SimRng::seed(seed)
}
"#,
        )],
    );
    let report = stdout_of(&ws.lint());
    assert!(
        report.contains("\"rule\": \"nondet-flow\""),
        "taint through two bindings into the seed sink:\n{report}"
    );
    assert!(
        report.contains("\"rule\": \"rng-provenance\""),
        "literal seed has no provenance:\n{report}"
    );
    // The parameter-derived seed must NOT be reported: count the
    // rng-provenance findings — exactly one (the literal).
    let prov_hits = report.matches("\"rule\": \"rng-provenance\"").count();
    assert_eq!(
        prov_hits, 1,
        "only the literal seed lacks provenance:\n{report}"
    );
}

#[test]
fn allow_unused_flags_stale_suppressions_and_clean_code_passes() {
    let ws = FixtureWs::new(
        "allows",
        &[(
            "fixture",
            r#"
// lint:allow(float-eq-typed): stale — nothing on the next line compares floats
pub fn add(a: u64, b: u64) -> u64 {
    a + b
}
"#,
        )],
    );
    let out = ws.lint();
    let report = stdout_of(&out);
    assert!(
        report.contains("\"rule\": \"allow-unused\""),
        "stale allow must be reported:\n{report}"
    );

    let clean = FixtureWs::new(
        "clean",
        &[(
            "fixture",
            "pub fn add(a: u64, b: u64) -> u64 {\n    a + b\n}\n",
        )],
    );
    let out = clean.lint();
    assert!(
        out.status.success(),
        "clean fixture must exit 0:\n{}",
        stdout_of(&out)
    );
}

/// The acceptance pin: `lint --json` over the real workspace is
/// byte-identical run-to-run and at `FLOWER_THREADS` 1 vs 8.
#[test]
fn lint_json_is_byte_identical_across_runs_and_thread_counts() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let run = |threads: &str| -> Vec<u8> {
        let out = Command::new(bin())
            .args(["lint", "--json", "--root"])
            .arg(&repo_root)
            .env("FLOWER_THREADS", threads)
            .output()
            .expect("xtask runs");
        assert!(
            out.status.success(),
            "workspace must lint clean: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        out.stdout
    };
    let t1a = run("1");
    let t1b = run("1");
    let t8 = run("8");
    assert_eq!(t1a, t1b, "same-thread reruns diverge");
    assert_eq!(t1a, t8, "FLOWER_THREADS 1 vs 8 diverge");
}
