//! Declarative fault plans: what to break, where, when, and how hard.
//!
//! A [`FaultPlan`] is a seed plus an ordered list of [`FaultClause`]s.
//! Each clause names a layer (or all layers), an active window in sim
//! time, and a [`FaultKind`]. Plans come from three places: the built-in
//! scenario presets ([`FaultPlan::preset`]), a TOML-subset text file
//! ([`FaultPlan::parse`]), or code.

use flower_sim::{SimDuration, SimTime};

/// One way a layer can misbehave.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The resize API rejects the call outright with probability `p`.
    Reject {
        /// Per-call rejection probability in `[0, 1]`.
        p: f64,
    },
    /// The resize lands short: only `fraction` of the requested *change*
    /// is applied (quantized-short actuation), with probability `p`.
    Short {
        /// Per-call probability in `[0, 1]`.
        p: f64,
        /// Fraction of the requested delta that actually lands, in
        /// `(0, 1)`.
        fraction: f64,
    },
    /// The resize call is accepted but its effect lands `delay` later.
    Delay {
        /// Per-call probability in `[0, 1]`.
        p: f64,
        /// How late the resize lands.
        delay: SimDuration,
    },
    /// The layer's sensor reading is dropped (stale metrics) with
    /// probability `p` per monitoring round.
    Dropout {
        /// Per-round drop probability in `[0, 1]`.
        p: f64,
    },
    /// A transient throttling storm: the control-plane API rejects every
    /// call during the first `burst` of each `period`, deterministically
    /// (a duty cycle anchored at the clause's window start — no RNG).
    Storm {
        /// Storm cycle length.
        period: SimDuration,
        /// Throttled prefix of each cycle (`0 < burst <= period`).
        burst: SimDuration,
    },
}

impl FaultKind {
    /// The short name used in traces and plan files.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Reject { .. } => "reject",
            FaultKind::Short { .. } => "short",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Dropout { .. } => "dropout",
            FaultKind::Storm { .. } => "storm",
        }
    }
}

/// One fault clause: a kind, a layer selector, and an active window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultClause {
    /// The layer label this clause targets (`None` = every layer).
    pub layer: Option<String>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultClause {
    /// Whether the clause targets the layer labelled `label`.
    pub fn applies_to(&self, label: &str) -> bool {
        self.layer.as_deref().is_none_or(|l| l == label)
    }

    /// Whether the clause is active at `now`.
    pub fn active(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A complete fault plan: seed plus ordered clauses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed of the injector's per-layer RNG streams. Independent of
    /// the episode seed, so the same fault draw sequence can be replayed
    /// against different workloads.
    pub seed: u64,
    /// The clauses, evaluated in order (first triggering clause wins).
    pub clauses: Vec<FaultClause>,
}

/// The built-in scenario preset names, in menu order.
pub const PRESETS: [&str; 5] = [
    "none",
    "flaky-actuator",
    "stale-sensor",
    "slow-resize",
    "throttle-storm",
];

impl FaultPlan {
    /// A plan with no clauses: running under it is byte-identical to not
    /// installing an injector at all.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan carries no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// A built-in scenario preset by name (see [`PRESETS`]), or `None`
    /// for an unknown name. Every preset's fault window closes by
    /// t = 25 min so a 45-minute episode has 20 minutes to re-converge.
    pub fn preset(name: &str) -> Option<FaultPlan> {
        let clause =
            |layer: Option<&str>, from_s: u64, until_s: u64, kind: FaultKind| FaultClause {
                layer: layer.map(str::to_owned),
                from: SimTime::from_secs(from_s),
                until: SimTime::from_secs(until_s),
                kind,
            };
        match name {
            "none" => Some(FaultPlan::none()),
            // Resize API flakiness across the whole flow while the flash
            // crowd is in force.
            "flaky-actuator" => Some(FaultPlan {
                seed: 0xFA11,
                clauses: vec![clause(None, 600, 1_200, FaultKind::Reject { p: 0.6 })],
            }),
            // Ingestion and analytics sensors go stale for three minutes
            // mid-spike: their loops must hold last-known-good shares.
            "stale-sensor" => Some(FaultPlan {
                seed: 0x57A1,
                clauses: vec![
                    clause(Some("ingestion"), 720, 900, FaultKind::Dropout { p: 1.0 }),
                    clause(Some("analytics"), 720, 900, FaultKind::Dropout { p: 1.0 }),
                ],
            }),
            // Resizes land two and a half minutes late (past the default
            // actuation timeout) at the two slow-moving tiers.
            "slow-resize" => Some(FaultPlan {
                seed: 0xDE1A,
                clauses: vec![
                    clause(
                        Some("analytics"),
                        600,
                        1_200,
                        FaultKind::Delay {
                            p: 1.0,
                            delay: SimDuration::from_secs(150),
                        },
                    ),
                    clause(
                        Some("storage"),
                        600,
                        1_200,
                        FaultKind::Delay {
                            p: 1.0,
                            delay: SimDuration::from_secs(150),
                        },
                    ),
                ],
            }),
            // Control-plane throttling storms: one minute of every two is
            // fully throttled, across all layers, for 15 minutes.
            "throttle-storm" => Some(FaultPlan {
                seed: 0x5709,
                clauses: vec![clause(
                    None,
                    600,
                    1_500,
                    FaultKind::Storm {
                        period: SimDuration::from_secs(120),
                        burst: SimDuration::from_secs(60),
                    },
                )],
            }),
            _ => None,
        }
    }

    /// Parse the TOML-subset plan format:
    ///
    /// ```toml
    /// seed = 7
    ///
    /// [[fault]]
    /// layer = "analytics"   # or "all"
    /// kind = "reject"       # reject|short|delay|dropout|storm
    /// p = 0.6
    /// from_s = 600
    /// until_s = 1200
    /// ```
    ///
    /// Kind-specific keys: `fraction` (short), `delay_s` (delay),
    /// `period_s`/`burst_s` (storm). `#` starts a comment; unknown keys
    /// are rejected.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending line or
    /// clause on malformed input.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        let mut draft: Option<ClauseDraft> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[fault]]" {
                if let Some(d) = draft.take() {
                    plan.clauses.push(d.finish()?);
                }
                draft = Some(ClauseDraft::default());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`: {line}", i + 1));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match &mut draft {
                None => match key {
                    "seed" => plan.seed = parse_u64(key, value)?,
                    _ => return Err(format!("line {}: unknown top-level key `{key}`", i + 1)),
                },
                Some(d) => d.set(key, value)?,
            }
        }
        if let Some(d) = draft.take() {
            plan.clauses.push(d.finish()?);
        }
        Ok(plan)
    }

    /// Serialize back into the [`FaultPlan::parse`] format.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# flower fault plan\n");
        let _ = writeln!(out, "seed = {}", self.seed);
        for c in &self.clauses {
            out.push_str("\n[[fault]]\n");
            let layer = c.layer.as_deref().unwrap_or("all");
            let _ = writeln!(out, "layer = \"{layer}\"");
            let _ = writeln!(out, "kind = \"{}\"", c.kind.name());
            match &c.kind {
                FaultKind::Reject { p } | FaultKind::Dropout { p } => {
                    let _ = writeln!(out, "p = {p}");
                }
                FaultKind::Short { p, fraction } => {
                    let _ = writeln!(out, "p = {p}");
                    let _ = writeln!(out, "fraction = {fraction}");
                }
                FaultKind::Delay { p, delay } => {
                    let _ = writeln!(out, "p = {p}");
                    let _ = writeln!(out, "delay_s = {}", delay.as_secs());
                }
                FaultKind::Storm { period, burst } => {
                    let _ = writeln!(out, "period_s = {}", period.as_secs());
                    let _ = writeln!(out, "burst_s = {}", burst.as_secs());
                }
            }
            let _ = writeln!(out, "from_s = {}", c.from.as_secs());
            if c.until < SimTime::MAX {
                let _ = writeln!(out, "until_s = {}", c.until.as_secs());
            }
        }
        out
    }
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("`{key}` must be a non-negative integer, got `{value}`"))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("`{key}` must be a finite number, got `{value}`"))
}

/// A `[[fault]]` section under construction.
#[derive(Debug, Default)]
struct ClauseDraft {
    layer: Option<String>,
    kind: Option<String>,
    p: Option<f64>,
    fraction: Option<f64>,
    delay_s: Option<u64>,
    period_s: Option<u64>,
    burst_s: Option<u64>,
    from_s: Option<u64>,
    until_s: Option<u64>,
}

impl ClauseDraft {
    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "layer" => self.layer = Some(value.to_owned()),
            "kind" => self.kind = Some(value.to_owned()),
            "p" => self.p = Some(parse_f64(key, value)?),
            "fraction" => self.fraction = Some(parse_f64(key, value)?),
            "delay_s" => self.delay_s = Some(parse_u64(key, value)?),
            "period_s" => self.period_s = Some(parse_u64(key, value)?),
            "burst_s" => self.burst_s = Some(parse_u64(key, value)?),
            "from_s" => self.from_s = Some(parse_u64(key, value)?),
            "until_s" => self.until_s = Some(parse_u64(key, value)?),
            _ => return Err(format!("unknown [[fault]] key `{key}`")),
        }
        Ok(())
    }

    fn probability(&self) -> Result<f64, String> {
        let p = self.p.ok_or("missing `p`")?;
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(format!("`p` must be in [0, 1], got {p}"))
        }
    }

    fn finish(self) -> Result<FaultClause, String> {
        let kind_name = self.kind.as_deref().ok_or("fault clause missing `kind`")?;
        let kind = match kind_name {
            "reject" => FaultKind::Reject {
                p: self.probability()?,
            },
            "dropout" => FaultKind::Dropout {
                p: self.probability()?,
            },
            "short" => {
                let fraction = self.fraction.ok_or("short fault missing `fraction`")?;
                if !(fraction > 0.0 && fraction < 1.0) {
                    return Err(format!("`fraction` must be in (0, 1), got {fraction}"));
                }
                FaultKind::Short {
                    p: self.probability()?,
                    fraction,
                }
            }
            "delay" => {
                let delay_s = self.delay_s.ok_or("delay fault missing `delay_s`")?;
                if delay_s == 0 {
                    return Err("`delay_s` must be positive".to_owned());
                }
                FaultKind::Delay {
                    p: self.probability()?,
                    delay: SimDuration::from_secs(delay_s),
                }
            }
            "storm" => {
                let period_s = self.period_s.ok_or("storm fault missing `period_s`")?;
                let burst_s = self.burst_s.ok_or("storm fault missing `burst_s`")?;
                if period_s == 0 || burst_s == 0 || burst_s > period_s {
                    return Err(format!(
                        "storm needs 0 < burst_s <= period_s, got burst_s={burst_s} period_s={period_s}"
                    ));
                }
                FaultKind::Storm {
                    period: SimDuration::from_secs(period_s),
                    burst: SimDuration::from_secs(burst_s),
                }
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        let from = SimTime::from_secs(self.from_s.unwrap_or(0));
        let until = match self.until_s {
            Some(s) => SimTime::from_secs(s),
            None => SimTime::MAX,
        };
        if until <= from {
            return Err(format!(
                "fault window must be non-empty: from_s={} until_s={}",
                from.as_secs(),
                until.as_secs()
            ));
        }
        let layer = match self.layer.as_deref() {
            None | Some("all") => None,
            Some(l) => Some(l.to_owned()),
        };
        Ok(FaultClause {
            layer,
            from,
            until,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_windowed() {
        for name in PRESETS {
            let plan = FaultPlan::preset(name).expect("every listed preset exists");
            if name == "none" {
                assert!(plan.is_empty());
                continue;
            }
            assert!(!plan.is_empty(), "{name} must carry clauses");
            for c in &plan.clauses {
                assert!(c.from < c.until, "{name}: empty window");
                assert!(
                    c.until <= SimTime::from_mins(25),
                    "{name}: fault window must close by t=25min for re-convergence"
                );
            }
        }
        assert!(FaultPlan::preset("no-such-scenario").is_none());
    }

    #[test]
    fn clause_selector_and_window() {
        let plan = FaultPlan::preset("stale-sensor").expect("preset exists");
        let c = plan.clauses.first().expect("has clauses");
        assert!(c.applies_to("ingestion"));
        assert!(!c.applies_to("storage"));
        assert!(!c.active(SimTime::from_secs(719)));
        assert!(c.active(SimTime::from_secs(720)));
        assert!(!c.active(SimTime::from_secs(900)), "until is exclusive");
        let all = FaultClause {
            layer: None,
            from: SimTime::ZERO,
            until: SimTime::MAX,
            kind: FaultKind::Reject { p: 1.0 },
        };
        assert!(all.applies_to("anything"));
    }

    #[test]
    fn parse_round_trips_every_preset() {
        for name in PRESETS {
            let plan = FaultPlan::preset(name).expect("preset exists");
            let text = plan.to_toml();
            let back = FaultPlan::parse(&text).expect("round-trip parses");
            assert_eq!(back, plan, "{name} round-trip");
        }
    }

    #[test]
    fn parse_accepts_the_documented_example() {
        let plan = FaultPlan::parse(
            r#"
            seed = 7  # fault stream seed

            [[fault]]
            layer = "analytics"
            kind = "reject"
            p = 0.6
            from_s = 600
            until_s = 1200

            [[fault]]
            layer = "all"
            kind = "storm"
            period_s = 120
            burst_s = 30
            "#,
        )
        .expect("example parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.clauses.len(), 2);
        let storm = plan.clauses.last().expect("two clauses");
        assert_eq!(storm.layer, None, "\"all\" normalizes to every layer");
        assert_eq!(storm.until, SimTime::MAX, "until defaults to forever");
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for (text, needle) in [
            ("nonsense", "expected `key = value`"),
            ("speed = 3", "unknown top-level key"),
            ("[[fault]]\nkind = \"reject\"", "missing `p`"),
            ("[[fault]]\nkind = \"reject\"\np = 1.5", "must be in [0, 1]"),
            ("[[fault]]\nkind = \"warp\"\np = 0.5", "unknown fault kind"),
            ("[[fault]]\np = 0.5", "missing `kind`"),
            (
                "[[fault]]\nkind = \"reject\"\nzap = 1",
                "unknown [[fault]] key",
            ),
            (
                "[[fault]]\nkind = \"short\"\np = 0.5\nfraction = 1.0",
                "`fraction` must be in (0, 1)",
            ),
            (
                "[[fault]]\nkind = \"delay\"\np = 0.5\ndelay_s = 0",
                "`delay_s` must be positive",
            ),
            (
                "[[fault]]\nkind = \"storm\"\nperiod_s = 10\nburst_s = 20",
                "burst_s <= period_s",
            ),
            (
                "[[fault]]\nkind = \"reject\"\np = 0.5\nfrom_s = 9\nuntil_s = 9",
                "window must be non-empty",
            ),
            ("seed = -4", "non-negative integer"),
            ("[[fault]]\nkind = \"reject\"\np = x", "finite number"),
        ] {
            let err = FaultPlan::parse(text).expect_err(text);
            assert!(
                err.contains(needle),
                "`{text}` → `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn kind_names_match_parser_vocabulary() {
        assert_eq!(FaultKind::Reject { p: 0.5 }.name(), "reject");
        assert_eq!(FaultKind::Dropout { p: 0.5 }.name(), "dropout");
        assert_eq!(
            FaultKind::Short {
                p: 0.5,
                fraction: 0.5
            }
            .name(),
            "short"
        );
        assert_eq!(
            FaultKind::Delay {
                p: 0.5,
                delay: SimDuration::from_secs(1)
            }
            .name(),
            "delay"
        );
        assert_eq!(
            FaultKind::Storm {
                period: SimDuration::from_secs(2),
                burst: SimDuration::from_secs(1)
            }
            .name(),
            "storm"
        );
    }
}
