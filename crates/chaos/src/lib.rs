// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-chaos
//!
//! Seeded, deterministic fault injection for the Flower reproduction.
//!
//! The paper's §3.3 control loops assume every resize lands and every
//! sensor reading is fresh; real managed services reject, throttle, lag,
//! and go quiet. This crate perturbs the simulated flow with exactly
//! those failure modes — **reproducibly**:
//!
//! * [`FaultPlan`] — a declarative plan (scenario presets + a TOML
//!   subset) of [`FaultClause`]s: resize-API rejection, quantized-short
//!   actuation, delayed actuation, sensor dropout, and deterministic
//!   throttling storms, each scoped to a layer and a sim-time window.
//! * [`FaultInjector`] — evaluates the plan. Every randomized clause
//!   draws from a dedicated per-layer RNG stream
//!   (`SimRng::seed(seed).fork(1 + position)`), so traces stay
//!   byte-identical at any worker count and adding a layer never
//!   perturbs another layer's faults.
//! * [`ChaosLayer`] — wraps any [`flower_cloud::LayerService`] so the
//!   injector sits between the control plane and the service.
//!
//! Every injected fault emits a [`flower_obs::kind::CHAOS_FAULT`] event
//! when a recorder is attached, so the `flower trace` timeline can line
//! faults up against retries, timeouts, and degraded-mode windows (see
//! `flower-core`'s resilience policy, which consumes this crate).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod inject;
pub mod plan;
pub mod wrap;

pub use inject::{DelayedResize, FaultDecision, FaultInjector};
pub use plan::{FaultClause, FaultKind, FaultPlan, PRESETS};
pub use wrap::ChaosLayer;
