//! [`ChaosLayer`]: wrap any [`LayerService`] in a fault injector.
//!
//! The wrapper is transparent for everything except [`LayerService::
//! actuate`]: resize requests first pass through the injector, which may
//! reject them ([`EngineError::Unavailable`]), land them short, or hold
//! them back to land later (release held resizes each tick with
//! [`ChaosLayer::release_due`]). Sensor dropout is a *metrics-path*
//! fault, so it is applied where sensors are read (see
//! [`FaultInjector::on_sense`]), not here.

use flower_cloud::alarms::Alarm;
use flower_cloud::engine::{EngineError, TickReport};
use flower_cloud::pricing::PriceList;
use flower_cloud::{LayerId, LayerService, MetricId, SensorProbe};
use flower_sim::SimTime;

use crate::inject::{DelayedResize, FaultDecision, FaultInjector};

/// A [`LayerService`] whose control-plane calls pass through a
/// [`FaultInjector`].
pub struct ChaosLayer<S: LayerService> {
    inner: S,
    injector: FaultInjector,
}

impl<S: LayerService> ChaosLayer<S> {
    /// Wrap `inner` behind `injector`.
    pub fn new(inner: S, injector: FaultInjector) -> ChaosLayer<S> {
        ChaosLayer { inner, injector }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The injector (e.g. to route sensor reads through
    /// [`FaultInjector::on_sense`]).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Mutable injector access.
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Land every delayed resize that has come due by `now`, applying it
    /// to the wrapped service. Returns the landed resizes with each
    /// outcome (a resize can still be rejected by the service itself
    /// when it finally lands).
    pub fn release_due(&mut self, now: SimTime) -> Vec<(DelayedResize, Result<(), EngineError>)> {
        self.injector
            .due_resizes(now)
            .into_iter()
            .map(|d| {
                let outcome = self.inner.actuate(d.target, now);
                (d, outcome)
            })
            .collect()
    }

    /// Unwrap, discarding the injector.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: LayerService> LayerService for ChaosLayer<S> {
    fn id(&self) -> LayerId {
        self.inner.id()
    }

    fn service_name(&self) -> &str {
        self.inner.service_name()
    }

    fn actuator_units(&self) -> f64 {
        self.inner.actuator_units()
    }

    fn target_units(&self) -> f64 {
        self.inner.target_units()
    }

    fn min_units(&self) -> f64 {
        self.inner.min_units()
    }

    fn max_units(&self) -> f64 {
        self.inner.max_units()
    }

    fn unit_price(&self, prices: &PriceList) -> f64 {
        self.inner.unit_price(prices)
    }

    fn quantize(&self, target: f64) -> f64 {
        self.inner.quantize(target)
    }

    fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
        let id = self.inner.id();
        let from = self.inner.actuator_units();
        match self.injector.on_actuate(id, from, target, now) {
            FaultDecision::Pass => self.inner.actuate(target, now),
            FaultDecision::Reject => Err(EngineError::Unavailable(id)),
            FaultDecision::Short { target: short } => self.inner.actuate(short, now),
            // Accepted, but the effect lands at `due`; the caller's
            // tick loop releases it via `release_due`.
            FaultDecision::Delay { .. } => Ok(()),
        }
    }

    fn utilization_sensor(&self) -> SensorProbe {
        self.inner.utilization_sensor()
    }

    fn measurement(&self, tick: &TickReport) -> Option<f64> {
        self.inner.measurement(tick)
    }

    fn headline_metrics(&self) -> Vec<MetricId> {
        self.inner.headline_metrics()
    }

    fn default_alarm(&self) -> Option<Alarm> {
        self.inner.default_alarm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultClause, FaultKind, FaultPlan};
    use flower_cloud::Statistic;
    use flower_sim::{SimDuration, SimTime};

    /// A minimal deterministic mock tier.
    struct MockService {
        units: f64,
        resizes: Vec<(f64, SimTime)>,
    }

    impl MockService {
        fn new() -> MockService {
            MockService {
                units: 2.0,
                resizes: Vec::new(),
            }
        }
    }

    const MOCK: LayerId = LayerId::new(7, "mock", "pods", "pods", "M");

    impl LayerService for MockService {
        fn id(&self) -> LayerId {
            MOCK
        }
        fn service_name(&self) -> &str {
            "mock-service"
        }
        fn actuator_units(&self) -> f64 {
            self.units
        }
        fn target_units(&self) -> f64 {
            self.units
        }
        fn max_units(&self) -> f64 {
            64.0
        }
        fn unit_price(&self, _prices: &PriceList) -> f64 {
            0.1
        }
        fn quantize(&self, target: f64) -> f64 {
            target.round()
        }
        fn actuate(&mut self, target: f64, now: SimTime) -> Result<(), EngineError> {
            let t = self.quantize(target).clamp(1.0, self.max_units());
            self.units = t;
            self.resizes.push((t, now));
            Ok(())
        }
        fn utilization_sensor(&self) -> SensorProbe {
            SensorProbe {
                metric: MetricId::new("Mock", "Utilization", "mock-service"),
                statistic: Statistic::Average,
                scale: 100.0,
            }
        }
        fn measurement(&self, _tick: &TickReport) -> Option<f64> {
            None
        }
        fn headline_metrics(&self) -> Vec<MetricId> {
            vec![MetricId::new("Mock", "Utilization", "mock-service")]
        }
    }

    fn plan_with(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed: 11,
            clauses: vec![FaultClause {
                layer: Some("mock".to_owned()),
                from: SimTime::ZERO,
                until: SimTime::MAX,
                kind,
            }],
        }
    }

    #[test]
    fn passthrough_without_active_faults() {
        let mut wrapped =
            ChaosLayer::new(MockService::new(), FaultInjector::new(FaultPlan::none()));
        assert_eq!(wrapped.id(), MOCK);
        assert_eq!(wrapped.service_name(), "mock-service");
        assert_eq!(wrapped.max_units(), 64.0);
        assert_eq!(wrapped.quantize(2.4), 2.0);
        assert!(wrapped.default_alarm().is_none());
        assert_eq!(wrapped.headline_metrics().len(), 1);
        wrapped
            .actuate(5.0, SimTime::from_secs(1))
            .expect("clean pass-through");
        assert_eq!(wrapped.actuator_units(), 5.0);
        assert_eq!(wrapped.injector().injected(), 0);
        assert_eq!(wrapped.into_inner().resizes.len(), 1);
    }

    #[test]
    fn reject_surfaces_unavailable_and_leaves_inner_untouched() {
        let mut wrapped = ChaosLayer::new(
            MockService::new(),
            FaultInjector::new(plan_with(FaultKind::Reject { p: 1.0 })),
        );
        let err = wrapped
            .actuate(5.0, SimTime::from_secs(1))
            .expect_err("injected rejection");
        assert!(matches!(err, EngineError::Unavailable(id) if id == MOCK));
        assert!(err.to_string().contains("temporarily unavailable"));
        assert_eq!(wrapped.actuator_units(), 2.0, "no resize landed");
    }

    #[test]
    fn short_actuation_lands_part_of_the_delta() {
        let mut wrapped = ChaosLayer::new(
            MockService::new(),
            FaultInjector::new(plan_with(FaultKind::Short {
                p: 1.0,
                fraction: 0.5,
            })),
        );
        wrapped
            .actuate(10.0, SimTime::from_secs(1))
            .expect("short actuations are accepted");
        // 2 → 10 shortened to 2 + 8·0.5 = 6.
        assert_eq!(wrapped.actuator_units(), 6.0);
    }

    #[test]
    fn delayed_actuation_lands_on_release() {
        let mut wrapped = ChaosLayer::new(
            MockService::new(),
            FaultInjector::new(plan_with(FaultKind::Delay {
                p: 1.0,
                delay: SimDuration::from_secs(90),
            })),
        );
        wrapped
            .actuate(8.0, SimTime::from_secs(10))
            .expect("delayed calls are accepted");
        assert_eq!(wrapped.actuator_units(), 2.0, "not landed yet");
        assert!(wrapped.release_due(SimTime::from_secs(60)).is_empty());
        let landed = wrapped.release_due(SimTime::from_secs(100));
        assert_eq!(landed.len(), 1);
        let (d, outcome) = landed.into_iter().next().expect("one landed resize");
        assert_eq!(d.due, SimTime::from_secs(100));
        assert!(outcome.is_ok());
        assert_eq!(wrapped.actuator_units(), 8.0);
        assert_eq!(
            wrapped.inner().resizes.as_slice(),
            &[(8.0, SimTime::from_secs(100))],
            "the resize landed late, at release time"
        );
    }

    #[test]
    fn injector_mut_reaches_sensor_faults() {
        let mut wrapped = ChaosLayer::new(
            MockService::new(),
            FaultInjector::new(plan_with(FaultKind::Dropout { p: 1.0 })),
        );
        assert_eq!(
            wrapped.injector_mut().on_sense(MOCK, 42.0, SimTime::ZERO),
            None
        );
    }
}
