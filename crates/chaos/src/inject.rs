//! The deterministic fault injector.
//!
//! A [`FaultInjector`] evaluates a [`FaultPlan`](crate::FaultPlan)
//! against sensor reads and actuation requests. Randomized clauses draw
//! from a **dedicated per-layer RNG stream**
//! (`SimRng::seed(plan.seed).fork(1 + layer.position())`), so the draw a
//! layer sees depends only on its own call sequence — never on other
//! layers, registry size, or worker count. That is what keeps chaos
//! traces byte-identical at any `FLOWER_THREADS`.

use flower_cloud::LayerId;
use flower_obs::{kind, FieldValue, Recorder};
use flower_sim::{SimRng, SimTime};

use crate::plan::{FaultKind, FaultPlan};

/// What the injector decided about one actuation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// No active fault: forward the request untouched.
    Pass,
    /// The control-plane API rejected the call.
    Reject,
    /// Only part of the requested change lands; forward `target` instead.
    Short {
        /// The shortened target to actually apply.
        target: f64,
    },
    /// The call is accepted but its effect lands at `due`.
    Delay {
        /// When the delayed resize lands.
        due: SimTime,
    },
}

/// A resize held back by a `delay` clause, waiting to land.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayedResize {
    /// The layer whose resize was delayed.
    pub layer: LayerId,
    /// The originally requested target.
    pub target: f64,
    /// When it lands.
    pub due: SimTime,
}

/// Evaluates a fault plan deterministically against one episode.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-layer RNG streams, keyed by layer position; created on first
    /// use so registration order never matters.
    streams: Vec<(u8, SimRng)>,
    delayed: Vec<DelayedResize>,
    recorder: Recorder,
    injected: u64,
}

impl FaultInjector {
    /// Build an injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            streams: Vec::new(),
            delayed: Vec::new(),
            recorder: Recorder::disabled(),
            injected: 0,
        }
    }

    /// Attach a recorder; every injected fault then emits one
    /// [`kind::CHAOS_FAULT`] event (and bumps the `chaos.faults`
    /// counter).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The plan under evaluation.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Append a clause to the plan at runtime (live fault injection —
    /// `flower serve`'s inject-fault command lands here). The clause
    /// joins the plan's ordered evaluation; per-layer RNG streams keep
    /// their positions, so a clause pushed at the same sim time sees
    /// the same draws on replay.
    pub fn push_clause(&mut self, clause: crate::plan::FaultClause) {
        self.plan.clauses.push(clause);
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Draw one Bernoulli trial from the layer's dedicated fault stream
    /// (lazily created, position-keyed — creation order never matters).
    fn chance(&mut self, layer: LayerId, p: f64) -> bool {
        let position = layer.position();
        let found = self.streams.iter_mut().find(|(pos, _)| *pos == position);
        let Some((_, rng)) = found else {
            let mut rng = SimRng::seed(self.plan.seed).fork(1 + u64::from(position));
            let hit = rng.chance(p);
            self.streams.push((position, rng));
            return hit;
        };
        rng.chance(p)
    }

    fn record(
        &mut self,
        layer: LayerId,
        now: SimTime,
        fault: &'static str,
        extra: &[(&'static str, FieldValue)],
    ) {
        self.injected += 1;
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.set_now(now);
        let mut fields: Vec<(&'static str, FieldValue)> =
            vec![("fault", fault.into()), ("layer", layer.label().into())];
        fields.extend(extra.iter().cloned());
        self.recorder.emit(kind::CHAOS_FAULT, &fields);
        self.recorder.count("chaos.faults", 1);
    }

    /// Filter one sensor reading: `None` when an active dropout clause
    /// fires (the loop must treat the round as stale).
    pub fn on_sense(&mut self, layer: LayerId, value: f64, now: SimTime) -> Option<f64> {
        for i in 0..self.plan.clauses.len() {
            let p = match self.plan.clauses.get(i) {
                Some(c) if c.applies_to(layer.label()) && c.active(now) => match c.kind {
                    FaultKind::Dropout { p } => p,
                    _ => continue,
                },
                Some(_) => continue,
                None => break,
            };
            if self.chance(layer, p) {
                self.record(layer, now, "dropout", &[("value", value.into())]);
                return None;
            }
        }
        Some(value)
    }

    /// Judge one actuation request `from → target`. Delayed resizes are
    /// queued internally; collect them with
    /// [`FaultInjector::due_resizes`].
    pub fn on_actuate(
        &mut self,
        layer: LayerId,
        from: f64,
        target: f64,
        now: SimTime,
    ) -> FaultDecision {
        for i in 0..self.plan.clauses.len() {
            let (clause_from, clause_kind) = match self.plan.clauses.get(i) {
                Some(c) if c.applies_to(layer.label()) && c.active(now) => (c.from, c.kind.clone()),
                Some(_) => continue,
                None => break,
            };
            match clause_kind {
                FaultKind::Dropout { .. } => {}
                FaultKind::Storm { period, burst } => {
                    // Deterministic duty cycle anchored at the clause
                    // window start: throttled during the first `burst` of
                    // every `period`. No RNG draw.
                    let phase = now.since(clause_from).as_millis() % period.as_millis();
                    if phase < burst.as_millis() {
                        self.record(layer, now, "storm", &[("target", target.into())]);
                        return FaultDecision::Reject;
                    }
                }
                FaultKind::Reject { p } => {
                    if self.chance(layer, p) {
                        self.record(layer, now, "reject", &[("target", target.into())]);
                        return FaultDecision::Reject;
                    }
                }
                FaultKind::Short { p, fraction } => {
                    if self.chance(layer, p) {
                        let short = from + (target - from) * fraction;
                        if (short - target).abs() > f64::EPSILON {
                            self.record(
                                layer,
                                now,
                                "short",
                                &[("short_target", short.into()), ("target", target.into())],
                            );
                            return FaultDecision::Short { target: short };
                        }
                    }
                }
                FaultKind::Delay { p, delay } => {
                    if self.chance(layer, p) {
                        let due = now + delay;
                        self.delayed.push(DelayedResize { layer, target, due });
                        self.record(
                            layer,
                            now,
                            "delay",
                            &[("due_s", due.as_secs().into()), ("target", target.into())],
                        );
                        return FaultDecision::Delay { due };
                    }
                }
            }
        }
        FaultDecision::Pass
    }

    /// Drain the delayed resizes that have come due by `now`, in the
    /// order they were injected.
    pub fn due_resizes(&mut self, now: SimTime) -> Vec<DelayedResize> {
        let mut due = Vec::new();
        self.delayed.retain(|d| {
            if d.due <= now {
                due.push(*d);
                false
            } else {
                true
            }
        });
        due
    }

    /// Resizes still held back (waiting to land).
    pub fn pending_delayed(&self) -> &[DelayedResize] {
        &self.delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultClause;
    use flower_cloud::layer::{ANALYTICS, INGESTION, STORAGE};
    use flower_sim::SimDuration;

    fn reject_all_plan(p: f64) -> FaultPlan {
        FaultPlan {
            seed: 42,
            clauses: vec![FaultClause {
                layer: None,
                from: SimTime::ZERO,
                until: SimTime::MAX,
                kind: FaultKind::Reject { p },
            }],
        }
    }

    #[test]
    fn decisions_replay_identically() {
        let run = || {
            let mut inj = FaultInjector::new(reject_all_plan(0.5));
            (0..100)
                .map(|s| inj.on_actuate(INGESTION, 2.0, 3.0, SimTime::from_secs(s)))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same plan, same draws");
        assert!(a.contains(&FaultDecision::Reject));
        assert!(a.contains(&FaultDecision::Pass));
    }

    #[test]
    fn per_layer_streams_are_independent() {
        // Layer A's decisions must not move when layer B consumes draws.
        let solo: Vec<_> = {
            let mut inj = FaultInjector::new(reject_all_plan(0.5));
            (0..50)
                .map(|s| inj.on_actuate(ANALYTICS, 2.0, 3.0, SimTime::from_secs(s)))
                .collect()
        };
        let interleaved: Vec<_> = {
            let mut inj = FaultInjector::new(reject_all_plan(0.5));
            (0..50)
                .map(|s| {
                    // Storage consumes draws from *its* stream first.
                    let _ = inj.on_actuate(STORAGE, 10.0, 20.0, SimTime::from_secs(s));
                    inj.on_actuate(ANALYTICS, 2.0, 3.0, SimTime::from_secs(s))
                })
                .collect()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn inactive_windows_and_other_layers_pass() {
        let plan = FaultPlan {
            seed: 1,
            clauses: vec![FaultClause {
                layer: Some("storage".to_owned()),
                from: SimTime::from_secs(100),
                until: SimTime::from_secs(200),
                kind: FaultKind::Reject { p: 1.0 },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        // Wrong layer.
        assert_eq!(
            inj.on_actuate(INGESTION, 2.0, 3.0, SimTime::from_secs(150)),
            FaultDecision::Pass
        );
        // Before / after the window.
        assert_eq!(
            inj.on_actuate(STORAGE, 2.0, 3.0, SimTime::from_secs(99)),
            FaultDecision::Pass
        );
        assert_eq!(
            inj.on_actuate(STORAGE, 2.0, 3.0, SimTime::from_secs(200)),
            FaultDecision::Pass
        );
        // Inside it, p=1 always rejects.
        assert_eq!(
            inj.on_actuate(STORAGE, 2.0, 3.0, SimTime::from_secs(150)),
            FaultDecision::Reject
        );
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn storm_duty_cycle_is_deterministic() {
        let plan = FaultPlan {
            seed: 9,
            clauses: vec![FaultClause {
                layer: None,
                from: SimTime::from_secs(100),
                until: SimTime::from_secs(1_000),
                kind: FaultKind::Storm {
                    period: SimDuration::from_secs(60),
                    burst: SimDuration::from_secs(20),
                },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        let decide =
            |inj: &mut FaultInjector, s| inj.on_actuate(INGESTION, 2.0, 3.0, SimTime::from_secs(s));
        // Phase is anchored at the window start (t=100s).
        assert_eq!(decide(&mut inj, 100), FaultDecision::Reject);
        assert_eq!(decide(&mut inj, 119), FaultDecision::Reject);
        assert_eq!(decide(&mut inj, 120), FaultDecision::Pass);
        assert_eq!(decide(&mut inj, 159), FaultDecision::Pass);
        assert_eq!(decide(&mut inj, 160), FaultDecision::Reject, "next cycle");
    }

    #[test]
    fn short_scales_the_delta_and_skips_noops() {
        let plan = FaultPlan {
            seed: 3,
            clauses: vec![FaultClause {
                layer: None,
                from: SimTime::ZERO,
                until: SimTime::MAX,
                kind: FaultKind::Short {
                    p: 1.0,
                    fraction: 0.5,
                },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        // 4 → 10 lands short at 7 (half the delta).
        let d = inj.on_actuate(STORAGE, 4.0, 10.0, SimTime::from_secs(1));
        assert_eq!(d, FaultDecision::Short { target: 7.0 });
        // A no-op request has no delta to shorten.
        let d = inj.on_actuate(STORAGE, 4.0, 4.0, SimTime::from_secs(2));
        assert_eq!(d, FaultDecision::Pass);
    }

    #[test]
    fn delayed_resizes_queue_and_come_due_in_order() {
        let plan = FaultPlan {
            seed: 5,
            clauses: vec![FaultClause {
                layer: None,
                from: SimTime::ZERO,
                until: SimTime::MAX,
                kind: FaultKind::Delay {
                    p: 1.0,
                    delay: SimDuration::from_secs(30),
                },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        let d1 = inj.on_actuate(INGESTION, 2.0, 3.0, SimTime::from_secs(10));
        let d2 = inj.on_actuate(ANALYTICS, 2.0, 5.0, SimTime::from_secs(20));
        assert_eq!(
            d1,
            FaultDecision::Delay {
                due: SimTime::from_secs(40)
            }
        );
        assert_eq!(
            d2,
            FaultDecision::Delay {
                due: SimTime::from_secs(50)
            }
        );
        assert_eq!(inj.pending_delayed().len(), 2);
        assert!(inj.due_resizes(SimTime::from_secs(39)).is_empty());
        let due = inj.due_resizes(SimTime::from_secs(45));
        assert_eq!(due.len(), 1);
        assert_eq!(due.first().map(|d| d.layer), Some(INGESTION));
        let due = inj.due_resizes(SimTime::from_secs(50));
        assert_eq!(due.first().map(|d| d.target), Some(5.0));
        assert!(inj.pending_delayed().is_empty());
    }

    #[test]
    fn dropout_filters_sensor_reads_only() {
        let plan = FaultPlan::preset("stale-sensor").expect("preset exists");
        let mut inj = FaultInjector::new(plan);
        let inside = SimTime::from_secs(800);
        assert_eq!(inj.on_sense(INGESTION, 55.0, inside), None);
        assert_eq!(inj.on_sense(STORAGE, 55.0, inside), Some(55.0));
        assert_eq!(
            inj.on_sense(INGESTION, 55.0, SimTime::from_secs(100)),
            Some(55.0)
        );
        // Dropout clauses never touch actuations.
        assert_eq!(
            inj.on_actuate(INGESTION, 2.0, 3.0, inside),
            FaultDecision::Pass
        );
    }

    #[test]
    fn faults_are_traced_when_a_recorder_is_attached() {
        let recorder = Recorder::with_capacity(64);
        let mut inj = FaultInjector::new(reject_all_plan(1.0));
        inj.set_recorder(recorder.clone());
        inj.on_actuate(INGESTION, 2.0, 3.0, SimTime::from_secs(30));
        let events = recorder.events();
        assert_eq!(events.len(), 1);
        let e = events.first().expect("one event");
        assert_eq!(e.kind, kind::CHAOS_FAULT);
        assert_eq!(e.str("fault"), Some("reject"));
        assert_eq!(e.str("layer"), Some("ingestion"));
        assert_eq!(e.f64("target"), Some(3.0));
        assert_eq!(e.at, SimTime::from_secs(30));
    }
}
