// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-par
//!
//! A dependency-free, **deterministic** data-parallel executor built on
//! [`std::thread::scope`]. It exists so Flower's hot paths (NSGA-II
//! population evaluation, non-dominated sorting, the lint scan, bench
//! fan-out) can use every core *without* giving up the workspace's
//! bit-identical-results regime (DESIGN.md §7–§8).
//!
//! The determinism contract:
//!
//! * work is split into **contiguous index ranges** — the split depends
//!   only on `(items, workers)`, never on scheduling;
//! * results are collected **in input order** (worker 0's chunk first,
//!   then worker 1's, …), so the output of [`Executor::par_map`] is
//!   exactly `items.iter().map(f).collect()` for *every* worker count —
//!   provided `f` is pure (no shared mutable state, no ambient RNG);
//! * a panic in any closure is **propagated** to the caller (the first
//!   panicking chunk in input order wins), matching serial behavior.
//!
//! The worker count comes from the `FLOWER_THREADS` environment variable
//! when set (clamped to ≥ 1), else [`std::thread::available_parallelism`].
//! Because results are ordered and closures must be pure, the thread
//! count can never change *what* is computed — only how fast.
//!
//! ```
//! use flower_par::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::num::NonZeroUsize;

/// A fixed-width data-parallel executor.
///
/// Cheap to construct and `Copy`: it holds only the worker count.
/// Threads are scoped per call ([`std::thread::scope`]), so an
/// `Executor` owns no OS resources and needs no shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Default for Executor {
    /// Same as [`Executor::from_env`].
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor with exactly `workers` workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> Executor {
        Executor {
            workers: workers.max(1),
        }
    }

    /// A single-worker executor: every `par_*` call degrades to a plain
    /// ordered serial loop with zero thread overhead.
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// Worker count from the environment: `FLOWER_THREADS` when set and
    /// parseable (clamped to ≥ 1), else the machine's available
    /// parallelism, else 1.
    pub fn from_env() -> Executor {
        // lint:allow(nondet-env): thread count selects only the degree of fan-out — ordered collection keeps every result bit-identical for any value
        let from_var = std::env::var("FLOWER_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        let workers = from_var
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get));
        Executor::new(workers)
    }

    /// The fixed worker count of this executor.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `0..n`, returning results in index order.
    ///
    /// `f(i)` must be pure. Panics in `f` are propagated.
    pub fn par_map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.workers.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let f = &f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers - 1);
            for w in 1..workers {
                let (start, end) = chunk_range(n, workers, w);
                handles.push(scope.spawn(move || (start..end).map(f).collect::<Vec<R>>()));
            }
            // The caller's thread works chunk 0 while the others run.
            let (start, end) = chunk_range(n, workers, 0);
            out.extend((start..end).map(f));
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    }

    /// Map `f(index, &item)` over a slice, returning results in input
    /// order. Equivalent to
    /// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for
    /// every worker count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_index(items.len(), |i| f(i, &items[i]))
    }

    /// Map `f(index, item)` over an owned vector, consuming it; results
    /// come back in input order. Use this when `f` wants ownership
    /// (e.g. moving a gene vector into an evaluated individual) so the
    /// parallel path stays clone-free.
    pub fn par_map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        // Split into per-worker chunks (back to front so each split_off
        // peels the tail), preserving input order inside each chunk.
        let mut rest = items;
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
        for w in (1..workers).rev() {
            let (start, _) = chunk_range(n, workers, w);
            chunks.push((start, rest.split_off(start)));
        }
        chunks.push((0, rest));
        chunks.reverse();

        let f = &f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers - 1);
            let mut chunk_iter = chunks.into_iter();
            let first = chunk_iter.next();
            for (start, chunk) in chunk_iter {
                handles.push(scope.spawn(move || {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(i, x)| f(start + i, x))
                        .collect::<Vec<R>>()
                }));
            }
            if let Some((start, chunk)) = first {
                out.extend(chunk.into_iter().enumerate().map(|(i, x)| f(start + i, x)));
            }
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    }

    /// Map `f(chunk_start, chunk)` over contiguous chunks of at most
    /// `chunk_size` items, returning one result per chunk in chunk
    /// order. The chunk boundaries depend only on
    /// `(items.len(), chunk_size)`, never on the worker count.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        self.par_map_index(n_chunks, |c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(start, &items[start..end])
        })
    }
}

/// The half-open index range of worker `w` when `n` items are split
/// across `workers` contiguous chunks whose sizes differ by at most one
/// (earlier workers take the remainder).
fn chunk_range(n: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = n / workers;
    let extra = n % workers;
    let start = w * base + w.min(extra);
    let len = base + usize::from(w < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 7, 8, 9, 100, 1023] {
            for workers in [1usize, 2, 3, 8, 16] {
                let workers = workers.min(n.max(1));
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for w in 0..workers {
                    let (start, end) = chunk_range(n, workers, w);
                    assert_eq!(start, prev_end, "n={n} workers={workers} w={w}");
                    assert!(end >= start);
                    covered += end - start;
                    prev_end = end;
                }
                assert_eq!(covered, n, "n={n} workers={workers}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..3)
            .map(|w| {
                let (a, b) = chunk_range(10, 3, w);
                b - a
            })
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn empty_input_all_entry_points() {
        let exec = Executor::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.par_map_index(0, |i| i).is_empty());
        assert!(exec.par_map(&empty, |_, &x| x).is_empty());
        assert!(exec.par_map_owned(empty.clone(), |_, x| x).is_empty());
        assert!(exec.par_chunks(&empty, 8, |_, c| c.len()).is_empty());
    }

    #[test]
    fn results_are_in_input_order_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1usize, 2, 3, 8, 64, 1000] {
            let exec = Executor::new(workers);
            assert_eq!(
                exec.par_map(&items, |_, &x| x * 3 + 1),
                expect,
                "w={workers}"
            );
            assert_eq!(
                exec.par_map_owned(items.clone(), |_, x| x * 3 + 1),
                expect,
                "owned w={workers}"
            );
        }
    }

    #[test]
    fn par_map_passes_matching_indices() {
        let items: Vec<usize> = (100..200).collect();
        let exec = Executor::new(8);
        let out = exec.par_map(&items, |i, &x| (i, x));
        for (i, &(j, x)) in out.iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(x, i + 100);
        }
    }

    #[test]
    fn par_map_owned_moves_without_clone() {
        // Boxed values have no Clone path in this closure — this
        // compiles only because chunks are moved, not copied.
        let items: Vec<Box<u32>> = (0..33).map(Box::new).collect();
        let out = Executor::new(4).par_map_owned(items, |i, b| *b + i as u32);
        assert_eq!(out.len(), 33);
        assert_eq!(out[10], 20);
    }

    #[test]
    fn par_chunks_boundaries_are_exact() {
        let items: Vec<u32> = (0..10).collect();
        let exec = Executor::new(3);
        // chunk_size 4 → chunks [0..4), [4..8), [8..10)
        let sums = exec.par_chunks(&items, 4, |start, chunk| (start, chunk.iter().sum::<u32>()));
        assert_eq!(sums, vec![(0, 6), (4, 22), (8, 17)]);
        // chunk_size larger than the input → one chunk
        let one = exec.par_chunks(&items, 100, |start, chunk| (start, chunk.len()));
        assert_eq!(one, vec![(0, 10)]);
        // chunk_size 0 is clamped to 1
        let singles = exec.par_chunks(&items[..3], 0, |_, chunk| chunk.len());
        assert_eq!(singles, vec![1, 1, 1]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = Executor::new(64).par_map(&[1u8, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "deliberate worker panic")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        Executor::new(4).par_map(&items, |i, _| {
            assert!(i != 77, "deliberate worker panic");
            i
        });
    }

    #[test]
    #[should_panic(expected = "first-chunk panic")]
    fn caller_thread_panic_propagates() {
        // Index 0 lives in the caller's own chunk.
        Executor::new(4).par_map_index(100, |i| {
            assert!(i != 0, "first-chunk panic");
            i
        });
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert_eq!(Executor::serial().workers(), 1);
    }

    #[test]
    fn from_env_is_at_least_one() {
        assert!(Executor::from_env().workers() >= 1);
        assert!(Executor::default().workers() >= 1);
    }
}
