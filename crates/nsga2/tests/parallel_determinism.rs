// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Thread-count invariance: the non-negotiable contract of the parallel
//! execution layer is *same seed ⇒ bit-identical results for every
//! worker count*. These tests pin it on ZDT1 and on a replica of
//! Flower's §3.2 resource-share problem (the real `ShareProblem` lives
//! in `flower-core`, which depends on this crate; the replica encodes
//! the same worked-example structure: negated-share objectives, a
//! budget constraint, and the three ratio constraints).

use flower_nsga2::sorting::fast_non_dominated_sort_with;
use flower_nsga2::{hypervolume, Executor, Individual, Nsga2, Nsga2Config, Problem};

/// ZDT1: 30 variables, true front at g = 1, f2 = 1 − sqrt(f1).
struct Zdt1;
impl Problem for Zdt1 {
    fn n_vars(&self) -> usize {
        30
    }
    fn n_objectives(&self) -> usize {
        2
    }
    fn bounds(&self, _: usize) -> (f64, f64) {
        (0.0, 1.0)
    }
    fn evaluate(&self, x: &[f64], out: &mut [f64]) {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        out[0] = f1;
        out[1] = g * (1.0 - (f1 / g).sqrt());
    }
}

/// Replica of the §3.2 worked example: maximize the three resource
/// shares (minimized as negations) under a budget and the paper's ratio
/// constraints `5·r_A ≥ r_I`, `2·r_A ≤ r_I`, `2·r_I ≤ r_S`.
struct ShareLike {
    budget: f64,
}
impl Problem for ShareLike {
    fn n_vars(&self) -> usize {
        3
    }
    fn n_objectives(&self) -> usize {
        3
    }
    fn n_constraints(&self) -> usize {
        4
    }
    fn bounds(&self, i: usize) -> (f64, f64) {
        (1.0, [100.0, 50.0, 5_000.0][i])
    }
    fn evaluate(&self, x: &[f64], out: &mut [f64]) {
        for (o, xi) in out.iter_mut().zip(x) {
            *o = -xi;
        }
    }
    fn constraints(&self, x: &[f64], out: &mut [f64]) {
        let (ri, ra, rs) = (x[0], x[1], x[2]);
        // 2017-ish unit prices: shards and VMs dominate, WCU is cheap.
        let cost = 0.015 * ri + 0.126 * ra + 0.000_65 * rs;
        out[0] = (cost - self.budget).max(0.0);
        out[1] = (ri - 5.0 * ra).max(0.0);
        out[2] = (2.0 * ra - ri).max(0.0);
        out[3] = (2.0 * ri - rs).max(0.0);
    }
}

/// Exact bit pattern of an individual — genes, objectives, violations.
type IndividualBits = (Vec<u64>, Vec<u64>, Vec<u64>, usize);

fn bits(ind: &Individual) -> IndividualBits {
    (
        ind.genes.iter().map(|g| g.to_bits()).collect(),
        ind.objectives.iter().map(|o| o.to_bits()).collect(),
        ind.violations.iter().map(|v| v.to_bits()).collect(),
        ind.rank,
    )
}

fn run_bits<P: Problem>(problem: P, cfg: Nsga2Config, workers: usize) -> Vec<IndividualBits> {
    let result = Nsga2::new(problem, cfg).with_workers(workers).run();
    result.population.iter().map(bits).collect()
}

#[test]
fn zdt1_front_is_bit_identical_across_worker_counts() {
    let cfg = Nsga2Config {
        population: 64,
        generations: 30,
        seed: 2017,
        ..Default::default()
    };
    let baseline = run_bits(Zdt1, cfg, 1);
    for workers in [2usize, 8] {
        assert_eq!(
            run_bits(Zdt1, cfg, workers),
            baseline,
            "ZDT1 diverged at {workers} workers"
        );
    }
}

#[test]
fn share_problem_front_is_bit_identical_across_worker_counts() {
    let cfg = Nsga2Config {
        population: 60,
        generations: 40,
        seed: 7,
        ..Default::default()
    };
    let baseline = run_bits(ShareLike { budget: 0.75 }, cfg, 1);
    for workers in [2usize, 8] {
        assert_eq!(
            run_bits(ShareLike { budget: 0.75 }, cfg, workers),
            baseline,
            "share problem diverged at {workers} workers"
        );
    }
}

#[test]
fn hypervolume_of_parallel_fronts_is_bit_identical() {
    let cfg = Nsga2Config {
        population: 40,
        generations: 25,
        seed: 99,
        ..Default::default()
    };
    let reference = [0.0, 0.0, 0.0];
    let hv_for = |workers: usize| {
        let result = Nsga2::new(ShareLike { budget: 0.75 }, cfg)
            .with_workers(workers)
            .run();
        let front: Vec<Vec<f64>> = result
            .pareto_front()
            .iter()
            .filter(|i| i.is_feasible())
            .map(|i| i.objectives.clone())
            .collect();
        hypervolume(&front, &reference)
    };
    let baseline = hv_for(1);
    assert!(baseline > 0.0, "degenerate baseline front");
    for workers in [2usize, 8] {
        assert_eq!(
            hv_for(workers).to_bits(),
            baseline.to_bits(),
            "hypervolume diverged at {workers} workers"
        );
    }
}

#[test]
fn sort_is_identical_across_worker_counts_above_threshold() {
    // Build a population big enough to take the row-parallel path and
    // check fronts + ranks against the serial triangular pass.
    let cfg = Nsga2Config {
        population: 300,
        generations: 2,
        seed: 5,
        ..Default::default()
    };
    let result = Nsga2::new(Zdt1, cfg).with_workers(1).run();
    let mut pop_serial = result.population.clone();
    let mut pop_parallel = result.population.clone();
    let fronts_serial = fast_non_dominated_sort_with(&mut pop_serial, &Executor::serial());
    for workers in [2usize, 8] {
        let fronts_parallel =
            fast_non_dominated_sort_with(&mut pop_parallel, &Executor::new(workers));
        assert_eq!(fronts_serial, fronts_parallel, "{workers} workers");
        for (a, b) in pop_serial.iter().zip(&pop_parallel) {
            assert_eq!(a.rank, b.rank);
        }
    }
}
