// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Robustness and determinism regression tests for the NSGA-II core.
//!
//! The elasticity manager feeds NSGA-II with objectives computed from
//! regression models, and a model extrapolated far outside its training
//! range can emit `NaN` or `inf`. The optimizer must quarantine such
//! individuals (worst-rank them) rather than panic or let a `NaN`
//! poison the whole front, and — same seed, same front — it must be
//! bit-reproducible run to run.

use flower_nsga2::individual::Individual;
use flower_nsga2::sorting::fast_non_dominated_sort;
use flower_nsga2::{Nsga2, Nsga2Config, Problem};
use flower_sim::testkit::forall;

fn ind(obj: Vec<f64>) -> Individual {
    Individual {
        genes: vec![],
        objectives: obj,
        violations: vec![],
        rank: usize::MAX,
        crowding: 0.0,
    }
}

/// A 2-objective problem whose evaluation is poisoned over part of the
/// decision space: one corner yields `NaN`, another `inf`. Elsewhere it
/// is a plain convex bi-objective trade-off with a well-defined front.
struct PoisonedProblem;

impl Problem for PoisonedProblem {
    fn n_vars(&self) -> usize {
        2
    }
    fn n_objectives(&self) -> usize {
        2
    }
    fn bounds(&self, _: usize) -> (f64, f64) {
        (0.0, 1.0)
    }
    fn evaluate(&self, x: &[f64], out: &mut [f64]) {
        let (a, b) = (x[0], x[1]);
        if a > 0.9 && b > 0.9 {
            out[0] = f64::NAN;
            out[1] = f64::NAN;
        } else if a < 0.05 && b < 0.05 {
            out[0] = f64::INFINITY;
            out[1] = f64::NEG_INFINITY;
        } else {
            out[0] = a;
            out[1] = (1.0 - a).mul_add(1.0 - a, b * 0.1);
        }
    }
}

/// The full generational loop survives a problem that emits `NaN`/`inf`
/// objectives: no panic, and every rank-0 survivor is well-defined.
#[test]
fn nan_inf_objectives_do_not_panic_and_are_worst_ranked() {
    let config = Nsga2Config {
        population: 24,
        generations: 30,
        seed: 7,
        ..Nsga2Config::default()
    };
    let result = Nsga2::new(PoisonedProblem, config).run();

    assert_eq!(result.population.len(), 24);
    let front = result.pareto_front();
    assert!(!front.is_empty(), "a well-defined front must survive");
    for ind in &front {
        assert!(
            ind.objectives.iter().all(|o| o.is_finite()),
            "degenerate individual leaked into the Pareto front: {:?}",
            ind.objectives
        );
    }
}

/// Direct sorter-level check: a population seeded with `NaN` and `inf`
/// objective vectors ranks every degenerate individual strictly behind
/// every well-defined one, and the sort itself never panics.
#[test]
fn degenerate_individuals_sort_behind_all_finite_ones() {
    let mut pop = vec![
        ind(vec![1.0, 2.0]),
        ind(vec![f64::NAN, 0.0]),
        ind(vec![2.0, 1.0]),
        ind(vec![f64::INFINITY, -1.0]),
        ind(vec![0.5, f64::NAN]),
        ind(vec![3.0, 3.0]),
    ];
    let fronts = fast_non_dominated_sort(&mut pop);
    assert!(!fronts.is_empty());

    let worst_finite_rank = pop
        .iter()
        .filter(|i| i.objectives.iter().all(|o| o.is_finite()))
        .map(|i| i.rank)
        .max()
        .expect("population contains finite individuals by construction");
    for i in &pop {
        if !i.objectives.iter().all(|o| o.is_finite()) {
            assert!(
                i.rank > worst_finite_rank,
                "degenerate individual ranked {} at or ahead of finite rank {}",
                i.rank,
                worst_finite_rank
            );
        }
    }
}

/// Same seed ⇒ identical final Pareto front, bit for bit, across two
/// independent runs — the determinism contract `Nsga2Config::seed`
/// documents. Checked over many seeds via the testkit harness.
#[test]
fn same_seed_yields_identical_pareto_front() {
    forall(8, |rng| {
        let config = Nsga2Config {
            population: 16,
            generations: 12,
            seed: rng.next_u64(),
            ..Nsga2Config::default()
        };
        let run = || Nsga2::new(PoisonedProblem, config).run();
        let (a, b) = (run(), run());

        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.population.len(), b.population.len());
        for (x, y) in a.population.iter().zip(&b.population) {
            assert_eq!(x.rank, y.rank);
            // Bit-exact equality is the point: compare the raw bits so
            // that 0.0 / -0.0 or NaN payload drift is caught too.
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&x.genes), bits(&y.genes));
            assert_eq!(bits(&x.objectives), bits(&y.objectives));
            assert_eq!(bits(&x.violations), bits(&y.violations));
        }
    });
}
