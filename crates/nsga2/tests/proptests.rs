//! Property-based tests for NSGA-II invariants.

use flower_nsga2::individual::Individual;
use flower_nsga2::sorting::{crowding_distance, fast_non_dominated_sort};
use flower_nsga2::{hypervolume, Nsga2, Nsga2Config, Problem};
use flower_sim::SimRng;
use proptest::prelude::*;

fn ind(obj: Vec<f64>) -> Individual {
    Individual {
        genes: vec![],
        objectives: obj,
        violations: vec![],
        rank: usize::MAX,
        crowding: 0.0,
    }
}

fn objective_vecs(n_points: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0.0..100.0f64, 2..3).prop_map(|mut v| {
            v.truncate(2);
            v
        }),
        n_points,
    )
}

proptest! {
    /// Every individual belongs to exactly one front, and fronts
    /// partition the population.
    #[test]
    fn fronts_partition_population(objs in objective_vecs(1..40)) {
        let mut pop: Vec<Individual> = objs.into_iter().map(ind).collect();
        let n = pop.len();
        let fronts = fast_non_dominated_sort(&mut pop);
        let mut all: Vec<usize> = fronts.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// No individual in front k dominates another in front k, and every
    /// individual in front k+1 is dominated by someone in front k.
    #[test]
    fn front_structure_is_correct(objs in objective_vecs(2..30)) {
        let mut pop: Vec<Individual> = objs.into_iter().map(ind).collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        for front in &fronts {
            for &i in front {
                for &j in front {
                    if i != j {
                        prop_assert!(!pop[i].constraint_dominates(&pop[j]),
                            "front member {} dominates member {}", i, j);
                    }
                }
            }
        }
        for w in fronts.windows(2) {
            for &j in &w[1] {
                let dominated = w[0].iter().any(|&i| pop[i].constraint_dominates(&pop[j]));
                prop_assert!(dominated, "member {} of front k+1 undominated by front k", j);
            }
        }
    }

    /// Crowding distances are non-negative and never NaN.
    #[test]
    fn crowding_is_sane(objs in objective_vecs(1..30)) {
        let mut pop: Vec<Individual> = objs.into_iter().map(ind).collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        for front in &fronts {
            crowding_distance(&mut pop, front);
            for &i in front {
                prop_assert!(!pop[i].crowding.is_nan());
                prop_assert!(pop[i].crowding >= 0.0);
            }
        }
    }

    /// Hypervolume is monotone: adding a point never decreases it, and it
    /// is bounded by the reference box.
    #[test]
    fn hypervolume_monotone_and_bounded(
        objs in objective_vecs(1..15),
        extra in prop::collection::vec(0.0..100.0f64, 2)
    ) {
        let reference = [110.0, 110.0];
        let base = hypervolume(&objs, &reference);
        let mut bigger = objs.clone();
        bigger.push(extra);
        let grown = hypervolume(&bigger, &reference);
        prop_assert!(grown >= base - 1e-9);
        prop_assert!(grown <= 110.0f64 * 110.0 + 1e-9);
        prop_assert!(base >= 0.0);
    }

    /// The exact hypervolume agrees with a Monte-Carlo estimate: the
    /// slicing algorithm and a brute-force dominance check must measure
    /// the same region.
    #[test]
    fn hypervolume_matches_monte_carlo(
        objs in prop::collection::vec(prop::collection::vec(0.0..90.0f64, 3), 1..8),
        seed in 0u64..1_000,
    ) {
        let reference = [100.0, 100.0, 100.0];
        let exact = hypervolume(&objs, &reference);
        let mut rng = SimRng::seed(seed);
        let samples = 40_000;
        let mut inside = 0u32;
        for _ in 0..samples {
            let p = [
                rng.uniform(0.0, 100.0),
                rng.uniform(0.0, 100.0),
                rng.uniform(0.0, 100.0),
            ];
            let dominated = objs
                .iter()
                .any(|o| o[0] <= p[0] && o[1] <= p[1] && o[2] <= p[2]);
            if dominated {
                inside += 1;
            }
        }
        let estimate = inside as f64 / samples as f64 * 1_000_000.0;
        // MC error at 40k samples over a 1e6 volume: ~3 sigma tolerance.
        let sigma = ((exact / 1e6) * (1.0 - exact / 1e6) / samples as f64).sqrt() * 1e6;
        prop_assert!(
            (exact - estimate).abs() <= 3.0 * sigma + 2_000.0,
            "exact {} vs MC {} (sigma {})", exact, estimate, sigma
        );
    }

    /// NSGA-II output: final population has the configured size, front-0
    /// members are mutually non-dominated, and the run is deterministic.
    #[test]
    fn nsga2_postconditions(seed in 0u64..500) {
        struct Sch;
        impl Problem for Sch {
            fn n_vars(&self) -> usize { 1 }
            fn n_objectives(&self) -> usize { 2 }
            fn bounds(&self, _: usize) -> (f64, f64) { (-10.0, 10.0) }
            fn evaluate(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] * x[0];
                out[1] = (x[0] - 2.0) * (x[0] - 2.0);
            }
        }
        let cfg = Nsga2Config { population: 16, generations: 5, seed, ..Default::default() };
        let result = Nsga2::new(Sch, cfg).run();
        prop_assert_eq!(result.population.len(), 16);
        let front = result.pareto_front();
        for a in &front {
            for b in &front {
                prop_assert!(!a.dominates_objectives(b) || std::ptr::eq(*a, *b));
            }
        }
    }
}
