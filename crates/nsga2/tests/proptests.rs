// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Property-based tests for NSGA-II invariants, driven by the
//! deterministic `testkit` harness (seeded cases, reproducible replay).

use flower_nsga2::individual::Individual;
use flower_nsga2::sorting::{crowding_distance, fast_non_dominated_sort};
use flower_nsga2::{hypervolume, Nsga2, Nsga2Config, Problem};
use flower_sim::testkit::forall;
use flower_sim::SimRng;

fn ind(obj: Vec<f64>) -> Individual {
    Individual {
        genes: vec![],
        objectives: obj,
        violations: vec![],
        rank: usize::MAX,
        crowding: 0.0,
    }
}

/// `n` random 2-objective vectors with entries in `[0, 100)`.
fn objective_vecs(rng: &mut SimRng, min_points: usize, max_points: usize) -> Vec<Vec<f64>> {
    let n = rng.int_range(min_points as i64, max_points as i64) as usize;
    (0..n)
        .map(|_| vec![rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)])
        .collect()
}

/// Every individual belongs to exactly one front, and fronts partition
/// the population.
#[test]
fn fronts_partition_population() {
    forall(128, |rng| {
        let objs = objective_vecs(rng, 1, 39);
        let mut pop: Vec<Individual> = objs.into_iter().map(ind).collect();
        let n = pop.len();
        let fronts = fast_non_dominated_sort(&mut pop);
        let mut all: Vec<usize> = fronts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    });
}

/// No individual in front k dominates another in front k, and every
/// individual in front k+1 is dominated by someone in front k.
#[test]
fn front_structure_is_correct() {
    forall(128, |rng| {
        let objs = objective_vecs(rng, 2, 29);
        let mut pop: Vec<Individual> = objs.into_iter().map(ind).collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        for front in &fronts {
            for &i in front {
                for &j in front {
                    if i != j {
                        assert!(
                            !pop[i].constraint_dominates(&pop[j]),
                            "front member {i} dominates member {j}"
                        );
                    }
                }
            }
        }
        for w in fronts.windows(2) {
            for &j in &w[1] {
                let dominated = w[0].iter().any(|&i| pop[i].constraint_dominates(&pop[j]));
                assert!(dominated, "member {j} of front k+1 undominated by front k");
            }
        }
    });
}

/// Crowding distances are non-negative and never NaN.
#[test]
fn crowding_is_sane() {
    forall(128, |rng| {
        let objs = objective_vecs(rng, 1, 29);
        let mut pop: Vec<Individual> = objs.into_iter().map(ind).collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        for front in &fronts {
            crowding_distance(&mut pop, front);
            for &i in front {
                assert!(!pop[i].crowding.is_nan());
                assert!(pop[i].crowding >= 0.0);
            }
        }
    });
}

/// Hypervolume is monotone: adding a point never decreases it, and it is
/// bounded by the reference box.
#[test]
fn hypervolume_monotone_and_bounded() {
    forall(128, |rng| {
        let objs = objective_vecs(rng, 1, 14);
        let extra = vec![rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)];
        let reference = [110.0, 110.0];
        let base = hypervolume(&objs, &reference);
        let mut bigger = objs.clone();
        bigger.push(extra);
        let grown = hypervolume(&bigger, &reference);
        assert!(grown >= base - 1e-9);
        assert!(grown <= 110.0f64 * 110.0 + 1e-9);
        assert!(base >= 0.0);
    });
}

/// The exact hypervolume agrees with a Monte-Carlo estimate: the slicing
/// algorithm and a brute-force dominance check must measure the same
/// region.
#[test]
fn hypervolume_matches_monte_carlo() {
    forall(24, |rng| {
        let n = rng.int_range(1, 7) as usize;
        let objs: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    rng.uniform(0.0, 90.0),
                    rng.uniform(0.0, 90.0),
                    rng.uniform(0.0, 90.0),
                ]
            })
            .collect();
        let seed = rng.below(1_000);
        let reference = [100.0, 100.0, 100.0];
        let exact = hypervolume(&objs, &reference);
        let mut mc_rng = SimRng::seed(seed);
        let samples = 40_000;
        let mut inside = 0u32;
        for _ in 0..samples {
            let p = [
                mc_rng.uniform(0.0, 100.0),
                mc_rng.uniform(0.0, 100.0),
                mc_rng.uniform(0.0, 100.0),
            ];
            let dominated = objs
                .iter()
                .any(|o| o[0] <= p[0] && o[1] <= p[1] && o[2] <= p[2]);
            if dominated {
                inside += 1;
            }
        }
        let estimate = f64::from(inside) / f64::from(samples) * 1_000_000.0;
        // MC error at 40k samples over a 1e6 volume: ~3 sigma tolerance.
        let sigma = ((exact / 1e6) * (1.0 - exact / 1e6) / f64::from(samples)).sqrt() * 1e6;
        assert!(
            (exact - estimate).abs() <= 3.0 * sigma + 2_000.0,
            "exact {exact} vs MC {estimate} (sigma {sigma})"
        );
    });
}

/// NSGA-II output: final population has the configured size, front-0
/// members are mutually non-dominated, and the run is deterministic.
#[test]
fn nsga2_postconditions() {
    struct Sch;
    impl Problem for Sch {
        fn n_vars(&self) -> usize {
            1
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (-10.0, 10.0)
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0];
            out[1] = (x[0] - 2.0) * (x[0] - 2.0);
        }
    }
    forall(48, |rng| {
        let seed = rng.below(500);
        let cfg = Nsga2Config {
            population: 16,
            generations: 5,
            seed,
            ..Default::default()
        };
        let result = Nsga2::new(Sch, cfg).run();
        assert_eq!(result.population.len(), 16);
        let front = result.pareto_front();
        for a in &front {
            for b in &front {
                assert!(!a.dominates_objectives(b) || std::ptr::eq(*a, *b));
            }
        }
    });
}
