//! Fast non-dominated sorting and crowding distance — the two devices
//! that make NSGA-II "fast and elitist" (Deb et al. 2002, §III).

use flower_par::Executor;

use crate::individual::{Domination, Individual};
use crate::soa::SoaPopulation;

/// Below this population size the O(N²) dominance matrix is cheaper to
/// compute serially (one triangular pass) than to fan out across
/// threads. Both paths produce identical structures, so the threshold
/// affects only speed, never results.
const PARALLEL_SORT_MIN_POP: usize = 256;

/// Partition the population into non-domination fronts under Deb's
/// constraint-domination relation. Returns the fronts as index vectors
/// (front 0 first) and writes each individual's `rank` field.
///
/// Serial entry point; see [`fast_non_dominated_sort_with`] for the
/// executor-aware variant the optimizer's generational loop uses.
pub fn fast_non_dominated_sort(pop: &mut [Individual]) -> Vec<Vec<usize>> {
    fast_non_dominated_sort_with(pop, &Executor::serial())
}

/// [`fast_non_dominated_sort`] with an explicit executor: the O(N²)
/// dominance matrix is computed row-parallel for large populations,
/// while the front peeling stays sequential (it is O(N·fronts) and
/// order-sensitive).
///
/// Determinism: the parallel rows compute exactly the structures the
/// triangular serial pass builds — `dominated_by[i]` lists `j` in
/// ascending order either way — so fronts and ranks are bit-identical
/// for every worker count.
pub fn fast_non_dominated_sort_with(
    pop: &mut [Individual],
    executor: &Executor,
) -> Vec<Vec<usize>> {
    let n = pop.len();
    // dominated_by[i] = individuals that i dominates;
    // domination_count[i] = how many individuals dominate i.
    let (dominated_by, domination_count) = if executor.workers() > 1 && n >= PARALLEL_SORT_MIN_POP {
        dominance_rows_parallel(pop, executor)
    } else {
        dominance_rows_serial(pop)
    };

    let fronts = peel_fronts(&dominated_by, domination_count);
    for (rank, front) in fronts.iter().enumerate() {
        for &i in front {
            pop[i].rank = rank;
        }
    }
    fronts
}

/// Peel non-domination fronts out of a dominance structure: front 0 is
/// everyone with domination count zero; removing a front decrements the
/// counts of everyone its members dominate, exposing the next front.
/// Consumes the counts (they end at zero); `dominated_by` is read-only.
/// Shared by the one-shot sorters and [`DominanceMatrix::fronts`].
fn peel_fronts(dominated_by: &[Vec<usize>], mut domination_count: Vec<usize>) -> Vec<Vec<usize>> {
    let n = dominated_by.len();
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// One triangular pass over all pairs; each pair is classified once via
/// the single-scan [`Individual::domination`].
fn dominance_rows_serial(pop: &[Individual]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = pop.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            match pop[i].domination(&pop[j]) {
                Domination::Left => {
                    dominated_by[i].push(j);
                    domination_count[j] += 1;
                }
                Domination::Right => {
                    dominated_by[j].push(i);
                    domination_count[i] += 1;
                }
                Domination::Neither => {}
            }
        }
    }
    (dominated_by, domination_count)
}

/// Row-parallel dominance matrix: row `i` is independent of every other
/// row (it only reads the population), so rows fan out over the
/// executor and are collected in index order. Each pair is compared
/// twice (once per row) — with `w` workers that is still a `w/2`-fold
/// win over the triangular pass, and the per-row outputs are identical
/// to the serial structures: `dominated_by[i]` ascends in `j` and
/// `domination_count[i]` counts the same dominators.
fn dominance_rows_parallel(
    pop: &[Individual],
    executor: &Executor,
) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = pop.len();
    let rows: Vec<(Vec<usize>, usize)> = executor.par_map_index(n, |i| {
        let mut dominates: Vec<usize> = Vec::new();
        let mut dominated_count = 0usize;
        for j in 0..n {
            if j == i {
                continue;
            }
            match pop[i].domination(&pop[j]) {
                Domination::Left => dominates.push(j),
                Domination::Right => dominated_count += 1,
                Domination::Neither => {}
            }
        }
        (dominates, dominated_count)
    });
    rows.into_iter().unzip()
}

/// The O(N²) dominance structure as a persistent, incrementally
/// updatable value: row `i` lists (ascending) every individual `i`
/// dominates, and `count[i]` is how many individuals dominate `i`.
///
/// The one-shot sorters rebuild this structure from scratch every call;
/// a replanner that re-solves a barely-moved problem can instead keep
/// the matrix across rounds and [`DominanceMatrix::refresh`] only the
/// rows touched by re-evaluated individuals — O(k·N) pair
/// classifications for k changed individuals instead of O(N²).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominanceMatrix {
    dominated_by: Vec<Vec<usize>>,
    domination_count: Vec<usize>,
}

impl DominanceMatrix {
    /// Build the full matrix over an SoA population. Serial triangular
    /// pass below [`PARALLEL_SORT_MIN_POP`], row-parallel above — both
    /// produce identical structures (see the module notes).
    pub fn build(pop: &SoaPopulation, executor: &Executor) -> DominanceMatrix {
        let n = pop.len();
        let (dominated_by, domination_count) =
            if executor.workers() > 1 && n >= PARALLEL_SORT_MIN_POP {
                let rows: Vec<(Vec<usize>, usize)> = executor.par_map_index(n, |i| {
                    let mut dominates: Vec<usize> = Vec::new();
                    let mut dominated_count = 0usize;
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        match pop.domination(i, j) {
                            Domination::Left => dominates.push(j),
                            Domination::Right => dominated_count += 1,
                            Domination::Neither => {}
                        }
                    }
                    (dominates, dominated_count)
                });
                rows.into_iter().unzip()
            } else {
                let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
                let mut domination_count = vec![0usize; n];
                for i in 0..n {
                    for j in (i + 1)..n {
                        match pop.domination(i, j) {
                            Domination::Left => {
                                dominated_by[i].push(j);
                                domination_count[j] += 1;
                            }
                            Domination::Right => {
                                dominated_by[j].push(i);
                                domination_count[i] += 1;
                            }
                            Domination::Neither => {}
                        }
                    }
                }
                (dominated_by, domination_count)
            };
        DominanceMatrix {
            dominated_by,
            domination_count,
        }
    }

    /// Number of individuals covered.
    pub fn len(&self) -> usize {
        self.dominated_by.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.dominated_by.is_empty()
    }

    /// Incrementally update after some individuals were re-evaluated:
    /// `changed[i]` marks individuals whose objectives or violations
    /// differ (bitwise) from the values the matrix was built over. Rows
    /// of changed individuals are rebuilt in full; rows of unchanged
    /// individuals only re-classify against the changed columns (their
    /// unchanged-vs-unchanged relations cannot have moved). With k
    /// changed individuals that is ~2·k·N kernel calls instead of N².
    ///
    /// The result is exactly [`DominanceMatrix::build`] over the
    /// current population: every row stays ascending and the counts are
    /// re-derived from the rows.
    pub fn refresh(&mut self, pop: &SoaPopulation, changed: &[bool]) {
        let n = self.dominated_by.len();
        assert_eq!(pop.len(), n, "population size changed; rebuild instead");
        assert_eq!(changed.len(), n, "changed mask arity mismatch");
        let changed_idx: Vec<usize> = (0..n).filter(|&i| changed[i]).collect();
        if changed_idx.is_empty() {
            return;
        }
        for i in 0..n {
            if changed[i] {
                // Full row rebuild.
                let mut row = Vec::new();
                for j in 0..n {
                    if j != i && pop.domination(i, j) == Domination::Left {
                        row.push(j);
                    }
                }
                self.dominated_by[i] = row;
            } else {
                // Keep unchanged targets, re-classify changed ones,
                // merging so the row stays ascending.
                let old = std::mem::take(&mut self.dominated_by[i]);
                let mut merged = Vec::with_capacity(old.len());
                let mut kept = old.into_iter().filter(|&j| !changed[j]).peekable();
                for &j in &changed_idx {
                    while kept.peek().is_some_and(|&o| o < j) {
                        merged.extend(kept.next());
                    }
                    if j != i && pop.domination(i, j) == Domination::Left {
                        merged.push(j);
                    }
                }
                merged.extend(kept);
                self.dominated_by[i] = merged;
            }
        }
        // Re-derive the counts from the rows: cheap (one pass over the
        // edges) and immune to incremental bookkeeping drift.
        self.domination_count.iter_mut().for_each(|c| *c = 0);
        for row in &self.dominated_by {
            for &j in row {
                self.domination_count[j] += 1;
            }
        }
    }

    /// Peel the non-domination fronts out of the matrix (front 0
    /// first). Does not write ranks; pair with
    /// [`SoaPopulation::set_rank`] when they are needed.
    pub fn fronts(&self) -> Vec<Vec<usize>> {
        peel_fronts(&self.dominated_by, self.domination_count.clone())
    }
}

/// [`fast_non_dominated_sort_with`] over SoA storage: identical
/// dominance structures (the kernel, row order, and peeling are
/// shared), writing each individual's rank. Returns the fronts as
/// index vectors, front 0 first.
pub fn fast_non_dominated_sort_soa(
    pop: &mut SoaPopulation,
    executor: &Executor,
) -> Vec<Vec<usize>> {
    let fronts = DominanceMatrix::build(pop, executor).fronts();
    for (rank, front) in fronts.iter().enumerate() {
        for &i in front {
            pop.set_rank(i, rank);
        }
    }
    fronts
}

/// [`crowding_distance`] over SoA storage — the same sorts, the same
/// boundary and span rules, the same accumulation order, element
/// accesses going to the contiguous objective array.
pub fn crowding_distance_soa(pop: &mut SoaPopulation, front: &[usize]) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        pop.set_crowding(i, 0.0);
    }
    if front.len() <= 2 {
        for &i in front {
            pop.set_crowding(i, f64::INFINITY);
        }
        return;
    }
    let n_obj = pop.n_objectives();
    let mut order: Vec<usize> = front.to_vec();
    for m in 0..n_obj {
        // total_cmp orders NaN objectives above +inf instead of
        // panicking; such individuals are already quarantined into the
        // worst fronts by the domination kernel.
        order.sort_by(|&a, &b| pop.objectives(a)[m].total_cmp(&pop.objectives(b)[m]));
        let (Some(&first), Some(&last)) = (order.first(), order.last()) else {
            continue; // unreachable: fronts of len <= 2 returned above
        };
        let lo = pop.objectives(first)[m];
        let hi = pop.objectives(last)[m];
        pop.set_crowding(first, f64::INFINITY);
        pop.set_crowding(last, f64::INFINITY);
        let span = hi - lo;
        if span <= 0.0 {
            continue; // degenerate objective: all equal
        }
        for w in 1..order.len() - 1 {
            let delta = (pop.objectives(order[w + 1])[m] - pop.objectives(order[w - 1])[m]) / span;
            let i = order[w];
            if pop.crowding(i).is_finite() {
                pop.set_crowding(i, pop.crowding(i) + delta);
            }
        }
    }
}

/// Compute the crowding distance of every individual in `front`
/// (indices into `pop`), writing the `crowding` field. Boundary
/// solutions of each objective get infinite distance, preserving the
/// extremes of the front.
pub fn crowding_distance(pop: &mut [Individual], front: &[usize]) {
    if front.is_empty() {
        return;
    }
    for &i in front {
        pop[i].crowding = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            pop[i].crowding = f64::INFINITY;
        }
        return;
    }
    let n_obj = front.first().map_or(0, |&i| pop[i].objectives.len());
    let mut order: Vec<usize> = front.to_vec();
    for m in 0..n_obj {
        // total_cmp orders NaN objectives above +inf instead of
        // panicking; such individuals are already quarantined into the
        // worst fronts by `constraint_dominates`.
        order.sort_by(|&a, &b| pop[a].objectives[m].total_cmp(&pop[b].objectives[m]));
        let (Some(&first), Some(&last)) = (order.first(), order.last()) else {
            continue; // unreachable: fronts of len <= 2 returned above
        };
        let lo = pop[first].objectives[m];
        let hi = pop[last].objectives[m];
        pop[first].crowding = f64::INFINITY;
        pop[last].crowding = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue; // degenerate objective: all equal
        }
        for w in 1..order.len() - 1 {
            let delta = (pop[order[w + 1]].objectives[m] - pop[order[w - 1]].objectives[m]) / span;
            let i = order[w];
            if pop[i].crowding.is_finite() {
                pop[i].crowding += delta;
            }
        }
    }
}

/// The crowded-comparison operator `≺n`: lower rank wins; within a rank
/// the larger crowding distance wins. Returns `true` when `a` is
/// preferred over `b`.
pub fn crowded_less(a: &Individual, b: &Individual) -> bool {
    a.rank < b.rank || (a.rank == b.rank && a.crowding > b.crowding)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(obj: &[f64]) -> Individual {
        Individual {
            genes: vec![],
            objectives: obj.to_vec(),
            violations: vec![],
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    #[test]
    fn sorts_into_expected_fronts() {
        // Front 0: (1,4), (2,2), (4,1) — mutually non-dominated.
        // Front 1: (3,4) dominated by (2,2)? (2<=3, 2<=4, strict) yes.
        //          (5,2) dominated by (4,1).
        // Front 2: (5,5) dominated by everything in front 1 too.
        let mut pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 2.0]),
            ind(&[4.0, 1.0]),
            ind(&[3.0, 4.0]),
            ind(&[5.0, 2.0]),
            ind(&[5.0, 5.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, vec![0, 1, 2]);
        let mut f1 = fronts[1].clone();
        f1.sort_unstable();
        assert_eq!(f1, vec![3, 4]);
        assert_eq!(fronts[2], vec![5]);
        assert_eq!(pop[0].rank, 0);
        assert_eq!(pop[3].rank, 1);
        assert_eq!(pop[5].rank, 2);
    }

    #[test]
    fn all_non_dominated_is_single_front() {
        let mut pop = vec![ind(&[1.0, 3.0]), ind(&[2.0, 2.0]), ind(&[3.0, 1.0])];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 3);
    }

    #[test]
    fn chain_produces_one_front_each() {
        let mut pop = vec![ind(&[1.0]), ind(&[2.0]), ind(&[3.0])];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 3);
        assert_eq!(
            fronts.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![1, 1, 1]
        );
    }

    #[test]
    fn infeasible_individuals_land_in_later_fronts() {
        let mut pop = vec![
            Individual {
                violations: vec![1.0],
                ..ind(&[0.0, 0.0])
            },
            ind(&[9.0, 9.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts[0], vec![1], "feasible solution must rank first");
        assert_eq!(fronts[1], vec![0]);
    }

    #[test]
    fn empty_population_no_fronts() {
        let mut pop: Vec<Individual> = vec![];
        assert!(fast_non_dominated_sort(&mut pop).is_empty());
    }

    #[test]
    fn parallel_rows_match_triangular_pass() {
        // A population large enough to cross PARALLEL_SORT_MIN_POP,
        // with duplicates, infeasibles, and a NaN degenerate mixed in.
        let n = 2 * super::PARALLEL_SORT_MIN_POP;
        let mut pop: Vec<Individual> = (0..n)
            .map(|k| {
                let x = (k % 37) as f64 * 0.11;
                let y = ((k * 7) % 53) as f64 * 0.07;
                let mut i = ind(&[x, y]);
                if k % 29 == 0 {
                    i.violations = vec![(k % 5) as f64 * 0.3];
                }
                if k == 123 {
                    i.objectives[0] = f64::NAN;
                }
                i
            })
            .collect();
        let mut pop_par = pop.clone();
        let serial = fast_non_dominated_sort_with(&mut pop, &Executor::serial());
        let parallel = fast_non_dominated_sort_with(&mut pop_par, &Executor::new(8));
        assert_eq!(serial, parallel, "front index vectors must be identical");
        for (a, b) in pop.iter().zip(&pop_par) {
            assert_eq!(a.rank, b.rank);
        }
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let mut pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 3.0]),
            ind(&[3.0, 2.0]),
            ind(&[4.0, 1.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        crowding_distance(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[3].crowding.is_infinite());
        assert!(pop[1].crowding.is_finite());
        assert!(pop[2].crowding.is_finite());
        // Interior points of this evenly spaced front have equal distance.
        assert!((pop[1].crowding - pop[2].crowding).abs() < 1e-12);
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Points at 0, 1, 2, 10 on both objectives: the point at 2 is more
        // isolated than the one at 1.
        let mut pop = vec![
            ind(&[0.0, 10.0]),
            ind(&[1.0, 9.0]),
            ind(&[2.0, 8.0]),
            ind(&[10.0, 0.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        crowding_distance(&mut pop, &front);
        assert!(pop[2].crowding > pop[1].crowding);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let mut pop = vec![ind(&[1.0, 2.0]), ind(&[2.0, 1.0])];
        let front: Vec<usize> = vec![0, 1];
        crowding_distance(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[1].crowding.is_infinite());
    }

    #[test]
    fn crowding_degenerate_objective_does_not_nan() {
        let mut pop = vec![ind(&[1.0, 5.0]), ind(&[2.0, 5.0]), ind(&[3.0, 5.0])];
        let front: Vec<usize> = vec![0, 1, 2];
        crowding_distance(&mut pop, &front);
        assert!(!pop[1].crowding.is_nan());
    }

    /// A throwaway problem matching the ad-hoc individuals used below
    /// (no genes, two objectives, one optional constraint slot).
    struct Shape2;
    impl crate::problem::Problem for Shape2 {
        fn n_vars(&self) -> usize {
            0
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn n_constraints(&self) -> usize {
            1
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, _: &[f64], _: &mut [f64]) {}
        fn constraints(&self, _: &[f64], _: &mut [f64]) {}
    }

    fn mixed_population(n: usize) -> Vec<Individual> {
        (0..n)
            .map(|k| {
                let x = (k % 37) as f64 * 0.11;
                let y = ((k * 7) % 53) as f64 * 0.07;
                let mut i = ind(&[x, y]);
                i.violations = vec![if k % 29 == 0 {
                    (k % 5) as f64 * 0.3
                } else {
                    0.0
                }];
                if k == 3 {
                    i.objectives[0] = f64::NAN;
                }
                i
            })
            .collect()
    }

    fn to_soa(pop: &[Individual]) -> SoaPopulation {
        let mut soa = SoaPopulation::for_problem(&Shape2, pop.len());
        for i in pop {
            soa.push(i.clone());
        }
        soa
    }

    #[test]
    fn soa_sort_matches_aos_sort() {
        for n in [0usize, 1, 7, 60, 2 * super::PARALLEL_SORT_MIN_POP] {
            let mut pop = mixed_population(n);
            let mut soa = to_soa(&pop);
            for workers in [1, 8] {
                let executor = Executor::new(workers);
                let aos_fronts = fast_non_dominated_sort_with(&mut pop, &executor);
                let soa_fronts = fast_non_dominated_sort_soa(&mut soa, &executor);
                assert_eq!(aos_fronts, soa_fronts, "n={n} workers={workers}");
                for (i, ind) in pop.iter().enumerate() {
                    assert_eq!(ind.rank, soa.rank(i));
                }
            }
        }
    }

    #[test]
    fn soa_crowding_matches_aos_crowding() {
        let mut pop = mixed_population(60);
        let mut soa = to_soa(&pop);
        let fronts = fast_non_dominated_sort_with(&mut pop, &Executor::serial());
        fast_non_dominated_sort_soa(&mut soa, &Executor::serial());
        for front in &fronts {
            crowding_distance(&mut pop, front);
            crowding_distance_soa(&mut soa, front);
        }
        for (i, ind) in pop.iter().enumerate() {
            assert_eq!(
                ind.crowding.to_bits(),
                soa.crowding(i).to_bits(),
                "crowding diverged at {i}"
            );
        }
    }

    #[test]
    fn dominance_matrix_build_is_worker_count_independent() {
        let soa = to_soa(&mixed_population(2 * super::PARALLEL_SORT_MIN_POP));
        let serial = DominanceMatrix::build(&soa, &Executor::serial());
        let parallel = DominanceMatrix::build(&soa, &Executor::new(8));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), soa.len());
        assert!(!serial.is_empty());
    }

    #[test]
    fn refresh_after_reevaluation_matches_full_rebuild() {
        let executor = Executor::serial();
        let pop = mixed_population(80);
        let mut soa = to_soa(&pop);
        let mut matrix = DominanceMatrix::build(&soa, &executor);

        // Re-evaluate a scattered subset: shift objectives, flip one
        // individual feasible→infeasible and another the other way.
        let mut changed = vec![false; soa.len()];
        let mut updated = pop.clone();
        for (k, ind) in updated.iter_mut().enumerate() {
            if k % 11 == 0 {
                ind.objectives[0] += 0.5;
                ind.objectives[1] = (ind.objectives[1] - 0.3).max(0.0);
                changed[k] = true;
            }
            if k == 17 {
                ind.violations = vec![0.7];
                changed[k] = true;
            }
            if k == 29 {
                ind.violations = vec![0.0];
                changed[k] = true;
            }
        }
        soa = to_soa(&updated);
        matrix.refresh(&soa, &changed);
        let rebuilt = DominanceMatrix::build(&soa, &executor);
        assert_eq!(matrix, rebuilt, "incremental refresh diverged");
        assert_eq!(matrix.fronts(), rebuilt.fronts());
    }

    #[test]
    fn refresh_with_no_changes_is_a_noop() {
        let soa = to_soa(&mixed_population(40));
        let mut matrix = DominanceMatrix::build(&soa, &Executor::serial());
        let before = matrix.clone();
        let mask = vec![false; soa.len()];
        matrix.refresh(&soa, &mask);
        assert_eq!(matrix, before);
    }

    #[test]
    fn crowded_comparison_rules() {
        let mut a = ind(&[1.0]);
        let mut b = ind(&[1.0]);
        a.rank = 0;
        b.rank = 1;
        assert!(crowded_less(&a, &b));
        assert!(!crowded_less(&b, &a));
        b.rank = 0;
        a.crowding = 2.0;
        b.crowding = 1.0;
        assert!(crowded_less(&a, &b));
        b.crowding = 2.0;
        assert!(!crowded_less(&a, &b));
        assert!(!crowded_less(&b, &a));
    }
}
