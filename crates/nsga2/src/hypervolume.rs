//! Exact hypervolume indicators for minimization fronts.
//!
//! The hypervolume (the measure of the objective-space region dominated
//! by a front, bounded by a reference point) is the standard scalar
//! quality indicator for multi-objective optimizers. The ablation benches
//! use it to compare NSGA-II against random and grid search on Flower's
//! resource-share problem (3 objectives).
//!
//! Implementation: 2-D by a sweep over the sorted front; 3-D by slicing
//! along the third objective and accumulating 2-D hypervolumes — the
//! classic HSO ("hypervolume by slicing objectives") scheme, exact and
//! comfortably fast for the front sizes NSGA-II produces.

/// Exact hypervolume of a minimization front w.r.t. `reference`.
///
/// Points that do not strictly dominate the reference point contribute
/// nothing. Supports 2- and 3-objective fronts.
///
/// # Panics
/// Panics when the dimensionality is not 2 or 3, or when points and the
/// reference disagree on dimension.
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    match *reference {
        [rx, ry] => hv2d(front, (rx, ry)),
        [rx, ry, rz] => hv3d(front, (rx, ry, rz)),
        // lint:allow(panic-macro): documented contract — the indicator is defined for 2 and 3 objectives only
        _ => panic!(
            "hypervolume supports 2 or 3 objectives, got {}",
            reference.len()
        ),
    }
}

/// Keep only points that strictly dominate the reference, then drop
/// dominated points (minimization).
fn nondominated_filter(front: &[Vec<f64>], reference: &[f64]) -> Vec<Vec<f64>> {
    let candidates: Vec<Vec<f64>> = front
        .iter()
        .filter(|p| {
            assert_eq!(
                p.len(),
                reference.len(),
                "point/reference dimension mismatch"
            );
            p.iter().zip(reference).all(|(a, r)| a < r)
        })
        .cloned()
        .collect();
    let mut keep = Vec::new();
    'outer: for (i, p) in candidates.iter().enumerate() {
        for (j, q) in candidates.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates =
                q.iter().zip(p).all(|(a, b)| a <= b) && q.iter().zip(p).any(|(a, b)| a < b);
            if dominates {
                continue 'outer;
            }
            // Exact duplicates: keep only the first occurrence.
            if q == p && j < i {
                continue 'outer;
            }
        }
        keep.push(p.clone());
    }
    keep
}

fn hv2d(front: &[Vec<f64>], reference: (f64, f64)) -> f64 {
    let (rx, ry) = reference;
    let mut pts: Vec<(f64, f64)> = nondominated_filter(front, &[rx, ry])
        .into_iter()
        .map(|p| match p[..] {
            [x, y] => (x, y),
            _ => unreachable!("nondominated_filter asserts the dimension"),
        })
        .collect();
    // Sort ascending by the first objective; the second objective then
    // descends along the non-dominated front. The filter admits only
    // points strictly dominating the reference, so NaNs never reach the
    // comparator; total_cmp keeps it panic-free regardless.
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut hv = 0.0;
    let mut prev_y = ry;
    for &(x, y) in &pts {
        hv += (rx - x) * (prev_y - y);
        prev_y = y;
    }
    hv
}

fn hv3d(front: &[Vec<f64>], reference: (f64, f64, f64)) -> f64 {
    let (rx, ry, rz) = reference;
    let mut pts: Vec<(f64, f64, f64)> = nondominated_filter(front, &[rx, ry, rz])
        .into_iter()
        .map(|p| match p[..] {
            [x, y, z] => (x, y, z),
            _ => unreachable!("nondominated_filter asserts the dimension"),
        })
        .collect();
    // Slice along the third objective, best (smallest) first.
    pts.sort_by(|a, b| a.2.total_cmp(&b.2));
    let mut hv = 0.0;
    let mut active: Vec<Vec<f64>> = Vec::new();
    for i in 0..pts.len() {
        let (x, y, z_lo) = pts[i];
        active.push(vec![x, y]);
        let z_hi = if i + 1 < pts.len() { pts[i + 1].2 } else { rz };
        let height = z_hi - z_lo;
        if height > 0.0 {
            hv += height * hv2d(&active, (rx, ry));
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_points_2d() {
        // Points (1,2) and (2,1) vs ref (3,3):
        // union area = 2·1 + 1·2 + ... draw it: total 3.0
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let with_dup = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - with_dup).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_count_once() {
        let hv = hypervolume(&[vec![1.0, 1.0], vec![1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_outside_reference_is_ignored() {
        let hv = hypervolume(&[vec![4.0, 4.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
        let hv = hypervolume(&[vec![3.0, 1.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0, "boundary point dominates no volume");
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn single_point_3d() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    fn two_disjointish_points_3d() {
        // (0,1,1) and (1,0,0) vs ref (2,2,2).
        // Vol(A) = 2·1·1 = 2 ; Vol(B) = 1·2·2 = 4;
        // Intersection: max coords (1,1,1) → box to ref = 1·1·1 = 1.
        // Union = 2 + 4 − 1 = 5.
        let hv = hypervolume(
            &[vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]],
            &[2.0, 2.0, 2.0],
        );
        assert!((hv - 5.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn hv3d_matches_inclusion_exclusion_on_triple() {
        // Three mutually non-dominated points.
        let pts = [
            vec![0.0, 2.0, 2.0],
            vec![2.0, 0.0, 2.0],
            vec![2.0, 2.0, 0.0],
        ];
        let r = [3.0, 3.0, 3.0];
        // Inclusion–exclusion by hand:
        // Each |Ai| = 3·1·1 = 3 (e.g. (3-0)(3-2)(3-2)). Sum = 9... compute:
        // A = (0,2,2): (3)(1)(1)=3 ; B = (2,0,2): (1)(3)(1)=3 ; C: (1)(1)(3)=3.
        // A∩B: max=(2,2,2) → 1 ; A∩C: (2,2,2) → 1 ; B∩C: (2,2,2) → 1.
        // A∩B∩C: (2,2,2) → 1.
        // Union = 9 − 3 + 1 = 7.
        let hv = hypervolume(&pts, &r);
        assert!((hv - 7.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn hypervolume_monotone_in_front_quality() {
        let worse = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let better = hypervolume(&[vec![0.5, 0.5]], &[3.0, 3.0]);
        assert!(better > worse);
    }

    #[test]
    #[should_panic(expected = "2 or 3 objectives")]
    fn unsupported_dimension_panics() {
        hypervolume(&[vec![1.0, 1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_point_panics() {
        hypervolume(&[vec![1.0]], &[2.0, 2.0]);
    }
}
