//! Exact hypervolume indicators for minimization fronts.
//!
//! The hypervolume (the measure of the objective-space region dominated
//! by a front, bounded by a reference point) is the standard scalar
//! quality indicator for multi-objective optimizers. The ablation benches
//! use it to compare NSGA-II against random and grid search on Flower's
//! resource-share problem (3 objectives).
//!
//! Implementation: 2-D by a sweep over the sorted front; 3-D by slicing
//! along the third objective and accumulating 2-D hypervolumes — the
//! classic HSO ("hypervolume by slicing objectives") scheme, exact and
//! comfortably fast for the front sizes NSGA-II produces.

/// Exact hypervolume of a minimization front w.r.t. `reference`.
///
/// Points that do not strictly dominate the reference point contribute
/// nothing. Supports 2- and 3-objective fronts.
///
/// # Panics
/// Panics when the reference's dimensionality is not 2 or 3. Points
/// must match the reference's dimension: mismatches are caught by a
/// debug assertion in [`nondominated_filter`]; release-build behavior
/// on a violated contract is unspecified (see the filter's docs).
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    match *reference {
        [rx, ry] => hv2d(front, (rx, ry)),
        [rx, ry, rz] => hv3d(front, (rx, ry, rz)),
        // lint:allow(panic-macro): documented contract — the indicator is defined for 2 and 3 objectives only
        _ => panic!(
            "hypervolume supports 2 or 3 objectives, got {}",
            reference.len()
        ),
    }
}

/// Keep only points that strictly dominate the reference, then drop
/// dominated points and duplicates (minimization).
///
/// Sort-then-sweep instead of the naive all-pairs scan: candidates are
/// sorted lexicographically ascending (`total_cmp` per coordinate), so
/// any dominator of `p` — and any earlier duplicate of `p` — sorts
/// *before* `p`. One forward sweep then compares each candidate only
/// against the kept set (by transitivity the minimal elements are
/// always kept), i.e. O(n log n + n·|front|·d) instead of O(n²·d), and
/// clones only the kept points. In 2-D the kept-set check collapses to
/// a single running minimum, giving a pure O(n log n) sweep.
///
/// # Contract
/// Every point must have the reference's dimensionality. This is
/// enforced by a debug assertion; in release builds a short point is
/// compared coordinate-wise over the common prefix and the result is
/// unspecified (no panic, no UB). [`hypervolume`] is the public entry
/// and its 2-/3-tuple reference match pins the dimension there.
fn nondominated_filter(front: &[Vec<f64>], reference: &[f64]) -> Vec<Vec<f64>> {
    let mut candidates: Vec<&Vec<f64>> = front
        .iter()
        .filter(|p| {
            debug_assert_eq!(
                p.len(),
                reference.len(),
                "point/reference dimension mismatch"
            );
            p.iter().zip(reference).all(|(a, r)| a < r)
        })
        .collect();
    candidates.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut keep: Vec<Vec<f64>> = Vec::new();
    if reference.len() == 2 {
        // 2-D fast path: after the lex sort the front is exactly the
        // strictly-decreasing staircase of the second coordinate.
        let mut best_y = f64::INFINITY;
        for p in candidates {
            // Slice-pattern destructuring; a wrong-arity point (possible
            // only in release, see the contract above) is skipped.
            let [_, y] = p[..] else { continue };
            if y < best_y {
                best_y = y;
                keep.push(p.clone());
            }
        }
        return keep;
    }
    'outer: for p in candidates {
        // q ≤ p in every coordinate covers both "q dominates p" (some
        // coordinate strict) and "q is an earlier duplicate of p".
        for q in &keep {
            if q.iter().zip(p.iter()).all(|(a, b)| a <= b) {
                continue 'outer;
            }
        }
        keep.push(p.clone());
    }
    keep
}

fn hv2d(front: &[Vec<f64>], reference: (f64, f64)) -> f64 {
    let (rx, ry) = reference;
    let mut pts: Vec<(f64, f64)> = nondominated_filter(front, &[rx, ry])
        .into_iter()
        .map(|p| match p[..] {
            [x, y] => (x, y),
            _ => unreachable!("hypervolume() pinned the dimension to 2"),
        })
        .collect();
    // Sort ascending by the first objective; the second objective then
    // descends along the non-dominated front. The filter admits only
    // points strictly dominating the reference, so NaNs never reach the
    // comparator; total_cmp keeps it panic-free regardless.
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut hv = 0.0;
    let mut prev_y = ry;
    for &(x, y) in &pts {
        hv += (rx - x) * (prev_y - y);
        prev_y = y;
    }
    hv
}

fn hv3d(front: &[Vec<f64>], reference: (f64, f64, f64)) -> f64 {
    let (rx, ry, rz) = reference;
    let mut pts: Vec<(f64, f64, f64)> = nondominated_filter(front, &[rx, ry, rz])
        .into_iter()
        .map(|p| match p[..] {
            [x, y, z] => (x, y, z),
            _ => unreachable!("hypervolume() pinned the dimension to 3"),
        })
        .collect();
    // Slice along the third objective, best (smallest) first.
    pts.sort_by(|a, b| a.2.total_cmp(&b.2));
    let mut hv = 0.0;
    let mut active: Vec<Vec<f64>> = Vec::new();
    for i in 0..pts.len() {
        let (x, y, z_lo) = pts[i];
        active.push(vec![x, y]);
        let z_hi = if i + 1 < pts.len() { pts[i + 1].2 } else { rz };
        let height = z_hi - z_lo;
        if height > 0.0 {
            hv += height * hv2d(&active, (rx, ry));
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_points_2d() {
        // Points (1,2) and (2,1) vs ref (3,3):
        // union area = 2·1 + 1·2 + ... draw it: total 3.0
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let with_dup = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - with_dup).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_count_once() {
        let hv = hypervolume(&[vec![1.0, 1.0], vec![1.0, 1.0]], &[2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_outside_reference_is_ignored() {
        let hv = hypervolume(&[vec![4.0, 4.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
        let hv = hypervolume(&[vec![3.0, 1.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0, "boundary point dominates no volume");
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn single_point_3d() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    fn two_disjointish_points_3d() {
        // (0,1,1) and (1,0,0) vs ref (2,2,2).
        // Vol(A) = 2·1·1 = 2 ; Vol(B) = 1·2·2 = 4;
        // Intersection: max coords (1,1,1) → box to ref = 1·1·1 = 1.
        // Union = 2 + 4 − 1 = 5.
        let hv = hypervolume(
            &[vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]],
            &[2.0, 2.0, 2.0],
        );
        assert!((hv - 5.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn hv3d_matches_inclusion_exclusion_on_triple() {
        // Three mutually non-dominated points.
        let pts = [
            vec![0.0, 2.0, 2.0],
            vec![2.0, 0.0, 2.0],
            vec![2.0, 2.0, 0.0],
        ];
        let r = [3.0, 3.0, 3.0];
        // Inclusion–exclusion by hand:
        // Each |Ai| = 3·1·1 = 3 (e.g. (3-0)(3-2)(3-2)). Sum = 9... compute:
        // A = (0,2,2): (3)(1)(1)=3 ; B = (2,0,2): (1)(3)(1)=3 ; C: (1)(1)(3)=3.
        // A∩B: max=(2,2,2) → 1 ; A∩C: (2,2,2) → 1 ; B∩C: (2,2,2) → 1.
        // A∩B∩C: (2,2,2) → 1.
        // Union = 9 − 3 + 1 = 7.
        let hv = hypervolume(&pts, &r);
        assert!((hv - 7.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn hypervolume_monotone_in_front_quality() {
        let worse = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let better = hypervolume(&[vec![0.5, 0.5]], &[3.0, 3.0]);
        assert!(better > worse);
    }

    #[test]
    #[should_panic(expected = "2 or 3 objectives")]
    fn unsupported_dimension_panics() {
        hypervolume(&[vec![1.0, 1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0, 2.0]);
    }

    // The dimension contract is a debug assertion (documented in
    // `nondominated_filter`); release builds skip the check.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_point_panics_in_debug() {
        hypervolume(&[vec![1.0]], &[2.0, 2.0]);
    }

    #[test]
    fn hv3d_regression_hand_computed_front() {
        // Hand-computed by inclusion–exclusion against ref (4,4,4):
        //   A=(1,2,3): (3)(2)(1)=6 ; B=(2,1,3): (2)(3)(1)=6 ;
        //   C=(3,3,1): (1)(1)(3)=3.
        //   A∩B: max=(2,2,3) → (2)(2)(1)=4 ; A∩C: max=(3,3,3) → 1 ;
        //   B∩C: max=(3,3,3) → 1 ; A∩B∩C: max=(3,3,3) → 1.
        //   Union = 6+6+3 − 4−1−1 + 1 = 10.
        // The input also carries a duplicate of A, a point dominated by
        // A, and a point outside the reference — all must contribute 0.
        let front = [
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 3.0],
            vec![3.0, 3.0, 1.0],
            vec![1.0, 2.0, 3.0], // duplicate of A
            vec![2.0, 2.0, 3.0], // dominated by A
            vec![5.0, 5.0, 5.0], // outside the reference
        ];
        let hv = hypervolume(&front, &[4.0, 4.0, 4.0]);
        assert!((hv - 10.0).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn filter_agrees_with_naive_all_pairs_scan() {
        // Pseudo-random 3-D cloud: the sweep filter must keep exactly
        // the minimal elements the quadratic reference scan keeps.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 3.0
        };
        let front: Vec<Vec<f64>> = (0..200).map(|_| (0..3).map(|_| next()).collect()).collect();
        let reference = [2.5, 2.5, 2.5];
        let fast = nondominated_filter(&front, &reference);
        // Naive reference implementation.
        let candidates: Vec<&Vec<f64>> = front
            .iter()
            .filter(|p| p.iter().zip(&reference).all(|(a, r)| a < r))
            .collect();
        let mut naive: Vec<Vec<f64>> = Vec::new();
        'outer: for (i, p) in candidates.iter().enumerate() {
            for (j, q) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominates = q.iter().zip(p.iter()).all(|(a, b)| a <= b)
                    && q.iter().zip(p.iter()).any(|(a, b)| a < b);
                if dominates || (q == p && j < i) {
                    continue 'outer;
                }
            }
            naive.push((*p).clone());
        }
        let mut fast_sorted = fast;
        let mut naive_sorted = naive;
        let lex = |a: &Vec<f64>, b: &Vec<f64>| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        fast_sorted.sort_by(&lex);
        naive_sorted.sort_by(&lex);
        assert_eq!(fast_sorted, naive_sorted);
    }
}
