//! Structure-of-arrays population storage for the optimizer hot loops.
//!
//! `Vec<Individual>` scatters every genome, objective vector, and
//! violation vector behind its own heap allocation; the dominance
//! matrix and crowding-distance loops then chase a pointer per access.
//! [`SoaPopulation`] flattens all three into contiguous `Vec<f64>`
//! arrays (strided by the problem's arity) and caches the two derived
//! quantities the constraint-domination kernel needs — total violation
//! and degeneracy — once per individual instead of recomputing them per
//! pair.
//!
//! Bit-identity contract: every accessor returns exactly the slice the
//! equivalent `Individual` would hold, and all derived values are
//! computed by the same functions ([`total_violation`],
//! [`domination_kernel`]) the array-of-structs path uses. Swapping the
//! storage changes no float operation and no RNG draw, so results are
//! byte-identical at any `FLOWER_THREADS`.

use crate::individual::{domination_kernel, Domination, Individual};
use crate::problem::{total_violation, Problem};

/// A population stored column-wise: one contiguous array per field,
/// strided by the problem's variable/objective/constraint counts.
#[derive(Debug, Clone, Default)]
pub struct SoaPopulation {
    n_vars: usize,
    n_objectives: usize,
    n_constraints: usize,
    genes: Vec<f64>,
    objectives: Vec<f64>,
    violations: Vec<f64>,
    /// Cached `total_violation(violations(i))` per individual.
    total_violation: Vec<f64>,
    /// Cached "any objective non-finite" flag per individual.
    degenerate: Vec<bool>,
    /// Non-domination rank (written by the sorter).
    rank: Vec<usize>,
    /// Crowding distance (written by the sorter).
    crowding: Vec<f64>,
}

impl SoaPopulation {
    /// An empty population shaped for `problem`, with room for
    /// `capacity` individuals.
    pub fn for_problem<P: Problem>(problem: &P, capacity: usize) -> SoaPopulation {
        let (nv, no, nc) = (
            problem.n_vars(),
            problem.n_objectives(),
            problem.n_constraints(),
        );
        SoaPopulation {
            n_vars: nv,
            n_objectives: no,
            n_constraints: nc,
            genes: Vec::with_capacity(capacity * nv),
            objectives: Vec::with_capacity(capacity * no),
            violations: Vec::with_capacity(capacity * nc),
            total_violation: Vec::with_capacity(capacity),
            degenerate: Vec::with_capacity(capacity),
            rank: Vec::with_capacity(capacity),
            crowding: Vec::with_capacity(capacity),
        }
    }

    /// Number of individuals stored.
    pub fn len(&self) -> usize {
        self.total_violation.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.total_violation.is_empty()
    }

    /// Objective count per individual.
    pub fn n_objectives(&self) -> usize {
        self.n_objectives
    }

    /// Drop all individuals, keeping the allocations and the strides.
    pub fn clear(&mut self) {
        self.genes.clear();
        self.objectives.clear();
        self.violations.clear();
        self.total_violation.clear();
        self.degenerate.clear();
        self.rank.clear();
        self.crowding.clear();
    }

    /// Append an evaluated individual, consuming its buffers. The
    /// cached total violation and degeneracy are derived here with the
    /// same functions the AoS path uses lazily.
    pub fn push(&mut self, ind: Individual) {
        assert_eq!(ind.genes.len(), self.n_vars, "gene arity mismatch");
        assert_eq!(
            ind.objectives.len(),
            self.n_objectives,
            "objective arity mismatch"
        );
        assert_eq!(
            ind.violations.len(),
            self.n_constraints,
            "violation arity mismatch"
        );
        self.total_violation.push(total_violation(&ind.violations));
        self.degenerate
            .push(ind.objectives.iter().any(|o| !o.is_finite()));
        self.genes.extend_from_slice(&ind.genes);
        self.objectives.extend_from_slice(&ind.objectives);
        self.violations.extend_from_slice(&ind.violations);
        self.rank.push(ind.rank);
        self.crowding.push(ind.crowding);
    }

    /// The genome of individual `i`.
    pub fn genes(&self, i: usize) -> &[f64] {
        &self.genes[i * self.n_vars..(i + 1) * self.n_vars]
    }

    /// The objective vector of individual `i`.
    pub fn objectives(&self, i: usize) -> &[f64] {
        &self.objectives[i * self.n_objectives..(i + 1) * self.n_objectives]
    }

    /// The violation vector of individual `i`.
    pub fn violations(&self, i: usize) -> &[f64] {
        &self.violations[i * self.n_constraints..(i + 1) * self.n_constraints]
    }

    /// Cached total constraint violation of individual `i`.
    pub fn total_violation(&self, i: usize) -> f64 {
        self.total_violation[i]
    }

    /// Whether individual `i` is feasible.
    pub fn is_feasible(&self, i: usize) -> bool {
        self.total_violation[i] <= 0.0
    }

    /// Cached degeneracy flag (any non-finite objective) of `i`.
    pub fn is_degenerate(&self, i: usize) -> bool {
        self.degenerate[i]
    }

    /// Non-domination rank of individual `i`.
    pub fn rank(&self, i: usize) -> usize {
        self.rank[i]
    }

    /// Set the rank of individual `i`.
    pub fn set_rank(&mut self, i: usize, rank: usize) {
        self.rank[i] = rank;
    }

    /// Crowding distance of individual `i`.
    pub fn crowding(&self, i: usize) -> f64 {
        self.crowding[i]
    }

    /// Set the crowding distance of individual `i`.
    pub fn set_crowding(&mut self, i: usize, crowding: f64) {
        self.crowding[i] = crowding;
    }

    /// Classify the pair `(a, b)` under constraint-domination, reading
    /// the cached derived values — the SoA face of
    /// [`Individual::domination`].
    pub fn domination(&self, a: usize, b: usize) -> Domination {
        domination_kernel(
            self.objectives(a),
            self.total_violation[a],
            self.degenerate[a],
            self.objectives(b),
            self.total_violation[b],
            self.degenerate[b],
        )
    }

    /// Copy individual `i` of `other` onto the end of `self` (rank and
    /// crowding included) — the SoA survival move, a handful of memcpys
    /// instead of a per-individual allocation.
    pub fn push_row_from(&mut self, other: &SoaPopulation, i: usize) {
        self.genes.extend_from_slice(other.genes(i));
        self.objectives.extend_from_slice(other.objectives(i));
        self.violations.extend_from_slice(other.violations(i));
        self.total_violation.push(other.total_violation[i]);
        self.degenerate.push(other.degenerate[i]);
        self.rank.push(other.rank[i]);
        self.crowding.push(other.crowding[i]);
    }

    /// Append every individual of `other`, preserving order.
    pub fn extend_from(&mut self, other: &SoaPopulation) {
        self.genes.extend_from_slice(&other.genes);
        self.objectives.extend_from_slice(&other.objectives);
        self.violations.extend_from_slice(&other.violations);
        self.total_violation
            .extend_from_slice(&other.total_violation);
        self.degenerate.extend_from_slice(&other.degenerate);
        self.rank.extend_from_slice(&other.rank);
        self.crowding.extend_from_slice(&other.crowding);
    }

    /// Reconstruct the individual at `i` (cloning its rows).
    pub fn to_individual(&self, i: usize) -> Individual {
        Individual {
            genes: self.genes(i).to_vec(),
            objectives: self.objectives(i).to_vec(),
            violations: self.violations(i).to_vec(),
            rank: self.rank[i],
            crowding: self.crowding[i],
        }
    }

    /// Convert the whole population back to array-of-structs form, in
    /// storage order.
    pub fn to_individuals(&self) -> Vec<Individual> {
        (0..self.len()).map(|i| self.to_individual(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct P2;
    impl Problem for P2 {
        fn n_vars(&self) -> usize {
            2
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn n_constraints(&self) -> usize {
            1
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0];
            out[1] = x[1];
        }
        fn constraints(&self, x: &[f64], out: &mut [f64]) {
            out[0] = (1.0 - (x[0] + x[1])).max(0.0);
        }
    }

    #[test]
    fn round_trips_individuals_bit_identically() {
        let inds: Vec<Individual> = [[0.2, 0.9], [0.5, 0.5], [0.1, 0.1]]
            .iter()
            .map(|g| Individual::evaluated(&P2, g.to_vec()))
            .collect();
        let mut soa = SoaPopulation::for_problem(&P2, inds.len());
        for ind in &inds {
            soa.push(ind.clone());
        }
        assert_eq!(soa.len(), 3);
        for (i, ind) in inds.iter().enumerate() {
            assert_eq!(soa.genes(i), ind.genes.as_slice());
            assert_eq!(soa.objectives(i), ind.objectives.as_slice());
            assert_eq!(soa.violations(i), ind.violations.as_slice());
            assert_eq!(
                soa.total_violation(i).to_bits(),
                ind.total_violation().to_bits()
            );
            assert_eq!(soa.is_feasible(i), ind.is_feasible());
            assert_eq!(soa.is_degenerate(i), ind.is_degenerate());
        }
        assert_eq!(soa.to_individuals(), inds);
    }

    #[test]
    fn domination_matches_the_aos_kernel() {
        let genes = [
            [0.2, 0.9], // feasible
            [0.5, 0.5], // feasible
            [0.1, 0.1], // infeasible
            [0.2, 0.2], // infeasible, smaller violation
        ];
        let inds: Vec<Individual> = genes
            .iter()
            .map(|g| Individual::evaluated(&P2, g.to_vec()))
            .collect();
        let mut soa = SoaPopulation::for_problem(&P2, inds.len());
        for ind in &inds {
            soa.push(ind.clone());
        }
        for a in 0..inds.len() {
            for b in 0..inds.len() {
                if a == b {
                    continue;
                }
                assert_eq!(
                    soa.domination(a, b),
                    inds[a].domination(&inds[b]),
                    "pair ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn survival_copy_preserves_rows() {
        let mut soa = SoaPopulation::for_problem(&P2, 4);
        for g in [[0.2, 0.9], [0.5, 0.5], [0.7, 0.1]] {
            soa.push(Individual::evaluated(&P2, g.to_vec()));
        }
        soa.set_rank(1, 3);
        soa.set_crowding(1, 0.25);
        let mut next = SoaPopulation::for_problem(&P2, 2);
        next.push_row_from(&soa, 1);
        next.push_row_from(&soa, 0);
        assert_eq!(next.len(), 2);
        assert_eq!(next.genes(0), soa.genes(1));
        assert_eq!(next.rank(0), 3);
        assert_eq!(next.crowding(0), 0.25);
        assert_eq!(next.genes(1), soa.genes(0));

        let mut all = SoaPopulation::for_problem(&P2, 8);
        all.extend_from(&soa);
        all.extend_from(&next);
        assert_eq!(all.len(), 5);
        assert_eq!(all.genes(3), soa.genes(1));
        all.clear();
        assert!(all.is_empty());
    }
}
