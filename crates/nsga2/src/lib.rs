// Unit tests may unwrap/expect and compare floats exactly — the
// panic-freedom and NaN-safety floor applies to library code only.
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]
//! # flower-nsga2
//!
//! A from-scratch implementation of **NSGA-II** — the fast elitist
//! multi-objective genetic algorithm of Deb, Pratap, Agarwal & Meyarivan
//! (IEEE TEVC 6(2), 2002) — which the Flower paper (§3.2) uses to search
//! the resource-provisioning plan space: *maximize* the resource shares
//! `(r_I, r_A, r_S)` of the ingestion, analytics and storage layers
//! subject to a budget constraint and the regression-learned dependency
//! constraints.
//!
//! Components, each in its own module:
//!
//! * [`problem`] — the [`Problem`] trait: box-bounded real decision
//!   variables, minimized objectives, and inequality constraints reported
//!   as violation magnitudes.
//! * [`individual`] — a candidate solution with its evaluation results.
//! * [`soa`] — structure-of-arrays population storage backing the hot
//!   loops: contiguous genome/objective/violation arrays with cached
//!   feasibility/degeneracy, bit-identical to the `Individual` path.
//! * [`sorting`] — fast non-dominated sorting and crowding distance,
//!   including Deb's constraint-domination rule, plus the persistent
//!   [`DominanceMatrix`] a replanner can refresh incrementally.
//! * [`archive`] — an epsilon-dominance archive bounding Pareto-front
//!   churn across replans so warm-start seeds stay small and stable.
//! * [`operators`] — simulated binary crossover (SBX), polynomial
//!   mutation, and binary tournament selection.
//! * [`algorithm`] — the generational loop with (μ+λ) elitist survival.
//! * [`hypervolume`] — exact hypervolume indicators for 2- and
//!   3-objective fronts, used by the ablation benches to compare NSGA-II
//!   against naive search.
//!
//! ```
//! use flower_nsga2::{Nsga2, Nsga2Config, Problem};
//!
//! /// Minimize (x², (x−2)²) over x ∈ [−10, 10] — Schaffer's SCH problem.
//! struct Sch;
//! impl Problem for Sch {
//!     fn n_vars(&self) -> usize { 1 }
//!     fn n_objectives(&self) -> usize { 2 }
//!     fn bounds(&self, _: usize) -> (f64, f64) { (-10.0, 10.0) }
//!     fn evaluate(&self, x: &[f64], out: &mut [f64]) {
//!         out[0] = x[0] * x[0];
//!         out[1] = (x[0] - 2.0) * (x[0] - 2.0);
//!     }
//! }
//!
//! let cfg = Nsga2Config { population: 40, generations: 50, seed: 1, ..Default::default() };
//! let result = Nsga2::new(Sch, cfg).run();
//! // The SCH front lives at x ∈ [0, 2]; every solution should be close.
//! assert!(result.pareto_front().iter().all(|ind| ind.genes[0] > -0.5 && ind.genes[0] < 2.5));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod algorithm;
pub mod archive;
pub mod hypervolume;
pub mod individual;
pub mod operators;
pub mod problem;
pub mod soa;
pub mod sorting;

pub use algorithm::{Nsga2, Nsga2Config, Nsga2Result};
pub use archive::EpsilonArchive;
pub use flower_par::Executor;
pub use hypervolume::hypervolume;
pub use individual::{Domination, Individual};
pub use problem::Problem;
pub use soa::SoaPopulation;
pub use sorting::DominanceMatrix;
