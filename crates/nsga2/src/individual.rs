//! Candidate solutions.

use crate::problem::{total_violation, Problem};

/// Outcome of comparing two individuals under Deb's
/// constraint-domination relation in a single pass — see
/// [`Individual::domination`]. Computing both directions at once halves
/// the objective scans of the O(N²) dominance matrix in
/// `fast_non_dominated_sort`, which is the sorter's hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domination {
    /// The left individual constraint-dominates the right.
    Left,
    /// The right individual constraint-dominates the left.
    Right,
    /// Neither dominates (mutually non-dominated, or equal).
    Neither,
}

/// The constraint-domination kernel shared by the array-of-structs
/// ([`Individual::domination`]) and structure-of-arrays
/// ([`crate::soa::SoaPopulation::domination`]) hot paths. Taking the
/// total violation and degeneracy flags precomputed lets the SoA path
/// cache them per individual while guaranteeing both representations
/// classify every pair bit-identically.
///
/// Deb's rule, extended for NaN/inf robustness: a well-defined
/// individual dominates a degenerate (non-finite-objective) one;
/// feasible beats infeasible; between infeasibles the smaller total
/// violation wins; between feasibles, plain Pareto domination applies.
pub fn domination_kernel(
    a_objectives: &[f64],
    a_total_violation: f64,
    a_degenerate: bool,
    b_objectives: &[f64],
    b_total_violation: f64,
    b_degenerate: bool,
) -> Domination {
    match (a_degenerate, b_degenerate) {
        (false, true) => return Domination::Left,
        (true, false) => return Domination::Right,
        (true, true) => return Domination::Neither,
        (false, false) => {}
    }
    match (a_total_violation <= 0.0, b_total_violation <= 0.0) {
        (true, false) => Domination::Left,
        (false, true) => Domination::Right,
        (false, false) => {
            if a_total_violation < b_total_violation {
                Domination::Left
            } else if b_total_violation < a_total_violation {
                Domination::Right
            } else {
                Domination::Neither
            }
        }
        (true, true) => {
            // Single scan computing both Pareto directions with an
            // early exit once the pair is known incomparable.
            let mut a_better = false;
            let mut b_better = false;
            for (a, b) in a_objectives.iter().zip(b_objectives) {
                if a < b {
                    a_better = true;
                } else if b < a {
                    b_better = true;
                }
                if a_better && b_better {
                    return Domination::Neither;
                }
            }
            match (a_better, b_better) {
                (true, false) => Domination::Left,
                (false, true) => Domination::Right,
                _ => Domination::Neither,
            }
        }
    }
}

/// One candidate solution together with its evaluation results and the
/// bookkeeping NSGA-II attaches during sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Decision-variable vector.
    pub genes: Vec<f64>,
    /// Objective values (minimized).
    pub objectives: Vec<f64>,
    /// Constraint violation magnitudes (empty for unconstrained problems).
    pub violations: Vec<f64>,
    /// Non-domination rank (0 = best front); set by the sorter.
    pub rank: usize,
    /// Crowding distance within its front; set by the sorter.
    pub crowding: f64,
}

impl Individual {
    /// Evaluate `genes` against `problem` and wrap the result.
    pub fn evaluated<P: Problem>(problem: &P, genes: Vec<f64>) -> Individual {
        assert_eq!(genes.len(), problem.n_vars(), "gene count mismatch");
        let mut objectives = vec![0.0; problem.n_objectives()];
        problem.evaluate(&genes, &mut objectives);
        // NaN objectives are not rejected here: degenerate evaluations
        // (overflow, 0/0 in a user problem) are quarantined into the
        // worst fronts by `constraint_dominates` instead of panicking
        // mid-optimization.
        let mut violations = vec![0.0; problem.n_constraints()];
        problem.constraints(&genes, &mut violations);
        Individual {
            genes,
            objectives,
            violations,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    /// Total constraint violation (0 for feasible individuals).
    pub fn total_violation(&self) -> f64 {
        total_violation(&self.violations)
    }

    /// Whether all constraints are satisfied.
    pub fn is_feasible(&self) -> bool {
        self.total_violation() <= 0.0
    }

    /// Whether any objective is non-finite (a degenerate evaluation).
    /// Such individuals are worst-ranked by
    /// [`Individual::constraint_dominates`] so they can never displace a
    /// well-defined solution. `inf` is quarantined alongside NaN: a
    /// `-inf` objective would otherwise dominate every finite solution
    /// and a `+inf` one would stretch crowding distances to infinity.
    pub fn is_degenerate(&self) -> bool {
        self.objectives.iter().any(|o| !o.is_finite())
    }

    /// Plain Pareto domination on objectives (ignores constraints):
    /// `self` is no worse in every objective and strictly better in at
    /// least one.
    pub fn dominates_objectives(&self, other: &Individual) -> bool {
        debug_assert_eq!(self.objectives.len(), other.objectives.len());
        let mut strictly_better = false;
        for (a, b) in self.objectives.iter().zip(&other.objectives) {
            if a > b {
                return false;
            }
            if a < b {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// Deb's constraint-domination: feasible beats infeasible; between
    /// infeasibles the smaller total violation wins; between feasibles,
    /// plain Pareto domination applies.
    ///
    /// Extended for NaN/inf robustness: any well-defined individual
    /// dominates a degenerate (non-finite-objective) one, so degenerates
    /// sink to the worst fronts instead of poisoning front 0 (NaN
    /// compares false against everything, which would otherwise make
    /// them "non-dominated"; `-inf` would dominate every finite
    /// solution).
    pub fn constraint_dominates(&self, other: &Individual) -> bool {
        self.domination(other) == Domination::Left
    }

    /// Both directions of [`Individual::constraint_dominates`] in one
    /// pass: `a.domination(b)` is `Left` iff `a.constraint_dominates(b)`
    /// and `Right` iff `b.constraint_dominates(a)` (the relation is
    /// antisymmetric, so both can never hold). The sorter uses this to
    /// classify each pair with a single scan of the objective vectors
    /// instead of two.
    pub fn domination(&self, other: &Individual) -> Domination {
        domination_kernel(
            &self.objectives,
            self.total_violation(),
            self.is_degenerate(),
            &other.objectives,
            other.total_violation(),
            other.is_degenerate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(obj: &[f64], viol: &[f64]) -> Individual {
        Individual {
            genes: vec![],
            objectives: obj.to_vec(),
            violations: viol.to_vec(),
            rank: 0,
            crowding: 0.0,
        }
    }

    #[test]
    fn pareto_domination_cases() {
        let a = ind(&[1.0, 1.0], &[]);
        let b = ind(&[2.0, 2.0], &[]);
        let c = ind(&[0.5, 3.0], &[]);
        assert!(a.dominates_objectives(&b));
        assert!(!b.dominates_objectives(&a));
        assert!(!a.dominates_objectives(&c));
        assert!(!c.dominates_objectives(&a));
        // Equal individuals do not dominate each other.
        assert!(!a.dominates_objectives(&a.clone()));
    }

    #[test]
    fn feasible_beats_infeasible() {
        let feasible_worse = ind(&[10.0], &[0.0]);
        let infeasible_better = ind(&[1.0], &[0.5]);
        assert!(feasible_worse.constraint_dominates(&infeasible_better));
        assert!(!infeasible_better.constraint_dominates(&feasible_worse));
    }

    #[test]
    fn between_infeasibles_smaller_violation_wins() {
        let a = ind(&[5.0], &[0.1]);
        let b = ind(&[1.0], &[0.9]);
        assert!(a.constraint_dominates(&b));
        assert!(!b.constraint_dominates(&a));
    }

    #[test]
    fn between_feasibles_pareto_applies() {
        let a = ind(&[1.0, 2.0], &[0.0]);
        let b = ind(&[2.0, 3.0], &[0.0]);
        assert!(a.constraint_dominates(&b));
        assert!(!b.constraint_dominates(&a));
    }

    #[test]
    fn feasibility_flags() {
        assert!(ind(&[0.0], &[]).is_feasible());
        assert!(ind(&[0.0], &[0.0, 0.0]).is_feasible());
        assert!(!ind(&[0.0], &[0.0, 1e-6]).is_feasible());
        assert_eq!(ind(&[0.0], &[1.0, 2.0]).total_violation(), 3.0);
    }

    #[test]
    fn domination_agrees_with_both_directed_checks() {
        let cases = [
            (ind(&[1.0, 1.0], &[]), ind(&[2.0, 2.0], &[])),
            (ind(&[1.0, 3.0], &[]), ind(&[3.0, 1.0], &[])),
            (ind(&[1.0, 1.0], &[]), ind(&[1.0, 1.0], &[])),
            (ind(&[5.0], &[0.0]), ind(&[1.0], &[0.5])),
            (ind(&[5.0], &[0.1]), ind(&[1.0], &[0.9])),
            (ind(&[5.0], &[0.4]), ind(&[1.0], &[0.4])),
            (ind(&[f64::NAN], &[]), ind(&[1.0], &[])),
            (ind(&[f64::NEG_INFINITY], &[]), ind(&[f64::NAN], &[])),
        ];
        for (a, b) in &cases {
            let expected = match (a.constraint_dominates(b), b.constraint_dominates(a)) {
                (true, false) => Domination::Left,
                (false, true) => Domination::Right,
                (false, false) => Domination::Neither,
                (true, true) => unreachable!("domination is antisymmetric"),
            };
            assert_eq!(a.domination(b), expected, "{a:?} vs {b:?}");
            // And the mirrored comparison flips Left/Right.
            let mirrored = match expected {
                Domination::Left => Domination::Right,
                Domination::Right => Domination::Left,
                Domination::Neither => Domination::Neither,
            };
            assert_eq!(b.domination(a), mirrored);
        }
    }

    #[test]
    fn evaluated_fills_objectives_and_violations() {
        use crate::problem::Problem;
        struct P;
        impl Problem for P {
            fn n_vars(&self) -> usize {
                1
            }
            fn n_objectives(&self) -> usize {
                2
            }
            fn n_constraints(&self) -> usize {
                1
            }
            fn bounds(&self, _: usize) -> (f64, f64) {
                (0.0, 4.0)
            }
            fn evaluate(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0];
                out[1] = -x[0];
            }
            fn constraints(&self, x: &[f64], out: &mut [f64]) {
                out[0] = (x[0] - 2.0).max(0.0); // x must be <= 2
            }
        }
        let good = Individual::evaluated(&P, vec![1.0]);
        assert_eq!(good.objectives, vec![1.0, -1.0]);
        assert!(good.is_feasible());
        let bad = Individual::evaluated(&P, vec![3.0]);
        assert!(!bad.is_feasible());
        assert_eq!(bad.total_violation(), 1.0);
    }
}
