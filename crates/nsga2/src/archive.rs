//! Epsilon-dominance archive (Laumanns et al. 2002) bounding
//! Pareto-front churn across replans.
//!
//! A replanner that warm-starts each NSGA-II run from the previous
//! front would otherwise carry an unbounded, jittery seed set: every
//! replan reshuffles which of the near-identical front points survive,
//! and tiny objective wiggles count as "new" solutions. The archive
//! quantizes objective space into epsilon-sized boxes and keeps at most
//! one representative per box: a candidate only enters if no archived
//! box dominates its box, it evicts every entry whose box it dominates,
//! and within a box the representative is replaced only by a point that
//! dominates it or sits closer to the box corner. The result is a
//! bounded, stable seed set whose membership is insensitive to
//! sub-epsilon noise.
//!
//! Determinism: insertion is a pure function of the entries already
//! held and the candidate (ties keep the incumbent), so feeding the
//! same solutions in the same order always yields the same archive —
//! there is no RNG and no wall-clock anywhere in this module.

/// One archived solution: its genome and (finite) objective vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry {
    /// Decision-variable vector of the archived solution.
    pub genes: Vec<f64>,
    /// Objective values (minimized, all finite).
    pub objectives: Vec<f64>,
}

/// A bounded epsilon-dominance archive over minimized objectives.
#[derive(Debug, Clone)]
pub struct EpsilonArchive {
    epsilon: f64,
    capacity: usize,
    entries: Vec<ArchiveEntry>,
}

/// Box-level Pareto comparison outcome for two box-index vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoxOrder {
    Dominates,
    Dominated,
    Same,
    Incomparable,
}

impl EpsilonArchive {
    /// An empty archive. `epsilon` is the objective-space box edge
    /// (larger ⇒ coarser, smaller archive); `capacity` caps the entry
    /// count — once full, candidates that would need a new box are
    /// rejected deterministically.
    pub fn new(epsilon: f64, capacity: usize) -> EpsilonArchive {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and positive"
        );
        assert!(capacity > 0, "capacity must be positive");
        EpsilonArchive {
            epsilon,
            capacity,
            entries: Vec::new(),
        }
    }

    /// Number of archived solutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive holds no solutions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The archived solutions, in insertion order of their boxes.
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// Drop all entries, keeping epsilon and capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The box index of an objective vector: `floor(obj / epsilon)`
    /// per component. Non-finite components never reach here (such
    /// candidates are rejected up front).
    fn box_index(&self, objectives: &[f64]) -> Vec<f64> {
        objectives
            .iter()
            .map(|o| (o / self.epsilon).floor())
            .collect()
    }

    /// Pareto-compare two box-index vectors (minimization).
    fn box_order(a: &[f64], b: &[f64]) -> BoxOrder {
        let mut a_better = false;
        let mut b_better = false;
        for (x, y) in a.iter().zip(b) {
            if x < y {
                a_better = true;
            } else if y < x {
                b_better = true;
            }
            if a_better && b_better {
                return BoxOrder::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => BoxOrder::Dominates,
            (false, true) => BoxOrder::Dominated,
            (false, false) => BoxOrder::Same,
            (true, true) => BoxOrder::Incomparable, // unreachable: early return above
        }
    }

    /// Squared distance from `objectives` to its box's lower corner —
    /// the within-box quality measure (closer wins, minimization).
    fn corner_distance_sq(&self, objectives: &[f64], box_idx: &[f64]) -> f64 {
        objectives
            .iter()
            .zip(box_idx)
            .map(|(o, b)| {
                let d = o - b * self.epsilon;
                d * d
            })
            .sum()
    }

    /// Offer a solution to the archive. Returns `true` when it was
    /// admitted (possibly replacing a same-box incumbent or evicting
    /// box-dominated entries). Candidates with any non-finite objective
    /// are rejected — the optimizer already quarantines degenerates and
    /// the archive must never seed them back into a population.
    pub fn offer(&mut self, genes: &[f64], objectives: &[f64]) -> bool {
        if objectives.iter().any(|o| !o.is_finite()) {
            return false;
        }
        let candidate_box = self.box_index(objectives);
        // One scan classifying the candidate's box against every entry.
        let mut same_box: Option<usize> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            match EpsilonArchive::box_order(&candidate_box, &self.box_index(&entry.objectives)) {
                BoxOrder::Dominated => return false,
                BoxOrder::Same => same_box = Some(i),
                BoxOrder::Dominates | BoxOrder::Incomparable => {}
            }
        }
        if let Some(i) = same_box {
            // Same box: replace the incumbent only if the candidate
            // dominates it or sits strictly closer to the box corner
            // (ties keep the incumbent — deterministic and stable).
            let incumbent = &self.entries[i];
            let replaces = dominates(objectives, &incumbent.objectives) || {
                let cand_d = self.corner_distance_sq(objectives, &candidate_box);
                let inc_d = self.corner_distance_sq(&incumbent.objectives, &candidate_box);
                cand_d < inc_d
            };
            if replaces {
                self.entries[i] = ArchiveEntry {
                    genes: genes.to_vec(),
                    objectives: objectives.to_vec(),
                };
            }
            return replaces;
        }
        // New box: evict every entry whose box the candidate dominates,
        // then admit (capacity permitting).
        let before = self.entries.len();
        let epsilon = self.epsilon;
        self.entries.retain(|entry| {
            let entry_box: Vec<f64> = entry
                .objectives
                .iter()
                .map(|o| (o / epsilon).floor())
                .collect();
            EpsilonArchive::box_order(&candidate_box, &entry_box) != BoxOrder::Dominates
        });
        if self.entries.len() >= self.capacity {
            // Full and nothing evicted: reject deterministically. The
            // eviction pass above means this only triggers when the
            // candidate is incomparable to every held box.
            let evicted_nothing = self.entries.len() == before;
            debug_assert!(evicted_nothing, "eviction should have made room");
            return false;
        }
        self.entries.push(ArchiveEntry {
            genes: genes.to_vec(),
            objectives: objectives.to_vec(),
        });
        true
    }
}

/// Plain Pareto domination on objective vectors (minimization).
fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> EpsilonArchive {
        EpsilonArchive::new(0.5, 16)
    }

    #[test]
    fn admits_incomparable_boxes() {
        let mut a = archive();
        assert!(a.offer(&[0.0], &[0.1, 2.1]));
        assert!(a.offer(&[1.0], &[2.1, 0.1]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn rejects_box_dominated_candidates() {
        let mut a = archive();
        assert!(a.offer(&[0.0], &[0.1, 0.1]));
        // (2.1, 2.1) lives in box (4,4), dominated by box (0,0).
        assert!(!a.offer(&[1.0], &[2.1, 2.1]));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn evicts_entries_the_candidate_box_dominates() {
        let mut a = archive();
        assert!(a.offer(&[0.0], &[2.1, 2.1]));
        assert!(a.offer(&[1.0], &[2.6, 1.6]));
        // Box (0,0) dominates both held boxes: they are evicted.
        assert!(a.offer(&[2.0], &[0.1, 0.1]));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].genes, vec![2.0]);
    }

    #[test]
    fn same_box_keeps_the_better_representative() {
        let mut a = archive();
        assert!(a.offer(&[0.0], &[0.4, 0.4]));
        // Same box (0,0); dominates the incumbent — replaces it.
        assert!(a.offer(&[1.0], &[0.3, 0.3]));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].genes, vec![1.0]);
        // Same box, incomparable but farther from the corner: rejected.
        assert!(!a.offer(&[2.0], &[0.45, 0.35]));
        assert_eq!(a.entries()[0].genes, vec![1.0]);
        // Same box, incomparable but strictly closer to the corner.
        assert!(a.offer(&[3.0], &[0.2, 0.35]));
        assert_eq!(a.entries()[0].genes, vec![3.0]);
    }

    #[test]
    fn sub_epsilon_noise_does_not_churn_membership() {
        let mut a = archive();
        assert!(a.offer(&[0.0], &[0.1, 2.1]));
        assert!(a.offer(&[1.0], &[2.1, 0.1]));
        // Wiggle each point by well under epsilon without dominating
        // the incumbent: membership must not change.
        assert!(!a.offer(&[2.0], &[0.15, 2.15]));
        assert!(!a.offer(&[3.0], &[2.15, 0.15]));
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries()[0].genes, vec![0.0]);
        assert_eq!(a.entries()[1].genes, vec![1.0]);
    }

    #[test]
    fn capacity_caps_incomparable_growth() {
        let mut a = EpsilonArchive::new(0.5, 2);
        // An anti-chain of boxes: nothing dominates anything.
        assert!(a.offer(&[0.0], &[0.1, 3.1]));
        assert!(a.offer(&[1.0], &[1.1, 2.1]));
        assert!(!a.offer(&[2.0], &[2.1, 1.1]), "archive is full");
        assert_eq!(a.len(), 2);
        // A dominating candidate still gets in by evicting.
        assert!(a.offer(&[3.0], &[0.1, 0.1]));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn rejects_non_finite_objectives() {
        let mut a = archive();
        assert!(!a.offer(&[0.0], &[f64::NAN, 1.0]));
        assert!(!a.offer(&[0.0], &[f64::INFINITY, 1.0]));
        assert!(a.is_empty());
        a.offer(&[1.0], &[0.1, 0.1]);
        a.clear();
        assert!(a.is_empty());
    }
}
