//! The NSGA-II generational loop.
//!
//! Performance notes (the share analyzer sits on Flower's re-planning
//! path, so optimizer latency is control-loop reaction time):
//!
//! * **Evaluation fan-out** — variation (tournament, SBX, mutation) is
//!   RNG-driven and stays sequential to preserve the seed's draw order,
//!   but objective/constraint evaluation is a pure function of the
//!   genes, so each generation's offspring are evaluated in parallel
//!   over a [`flower_par::Executor`] with ordered collection. Same
//!   seed ⇒ bit-identical fronts for every worker count.
//! * **SoA hot loops** — the generational loop runs over
//!   [`SoaPopulation`]: genomes, objectives, and violations live in
//!   contiguous strided arrays, so the dominance matrix, crowding
//!   sorts, and tournaments read flat `f64` columns instead of chasing
//!   a heap pointer per individual. The storage swap changes no float
//!   operation and no RNG draw (see `soa`), so results are
//!   bit-identical to the former `Vec<Individual>` loop.
//! * **Clone-free survival** — environmental selection picks indices
//!   into the combined parent+offspring pool and copies the survivor
//!   rows with a handful of `memcpy`s per generation.
//! * **Buffer reuse** — the combined pool and the survivor list are
//!   allocated once and recycled across generations.
//! * **Warm starts** — [`Nsga2::with_seed_genes`] seeds the initial
//!   population from a previous front (replanners re-solving a
//!   barely-moved problem); remaining slots are filled with mutated
//!   jitter around the seeds instead of uniform random draws.

use flower_obs::{kind, FieldValue, Recorder};
use flower_par::Executor;
use flower_sim::SimRng;

use crate::hypervolume::hypervolume;
use crate::individual::Individual;
use crate::operators::{binary_tournament_soa, polynomial_mutation, random_genes, sbx_crossover};
use crate::problem::Problem;
use crate::soa::SoaPopulation;
use crate::sorting::{
    crowding_distance, crowding_distance_soa, fast_non_dominated_sort_soa,
    fast_non_dominated_sort_with,
};

/// Tunables of an NSGA-II run. `Default` mirrors the settings of Deb's
/// reference implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nsga2Config {
    /// Population size (also the offspring count per generation).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index.
    pub eta_crossover: f64,
    /// Per-variable mutation probability; `None` → `1 / n_vars`.
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub eta_mutation: f64,
    /// RNG seed — same seed, same front.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 100,
            generations: 250,
            crossover_prob: 0.9,
            eta_crossover: 15.0,
            mutation_prob: None,
            eta_mutation: 20.0,
            seed: 0,
        }
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// Final population, sorted by `(rank, -crowding)`.
    pub population: Vec<Individual>,
    /// Number of objective evaluations performed.
    pub evaluations: u64,
    /// Generations actually executed.
    pub generations: usize,
}

impl Nsga2Result {
    /// The first non-domination front of the final population
    /// (feasible Pareto-optimal solutions when any exist).
    pub fn pareto_front(&self) -> Vec<&Individual> {
        self.population.iter().filter(|i| i.rank == 0).collect()
    }

    /// Deduplicated Pareto front: objective vectors are rounded to
    /// `decimals` places and only the first representative of each
    /// rounded vector is kept. The paper's worked example reports "six
    /// Pareto optimal solutions" — discrete resource plans — which is
    /// exactly this view of the continuous front.
    pub fn distinct_front(&self, decimals: u32) -> Vec<&Individual> {
        let scale = 10f64.powi(decimals as i32);
        let mut seen: Vec<Vec<i64>> = Vec::new();
        let mut out = Vec::new();
        for ind in self.pareto_front() {
            let key: Vec<i64> = ind
                .objectives
                .iter()
                .map(|&o| (o * scale).round() as i64)
                .collect();
            if !seen.contains(&key) {
                seen.push(key);
                out.push(ind);
            }
        }
        out
    }
}

/// An NSGA-II optimizer bound to a problem instance.
pub struct Nsga2<P: Problem> {
    problem: P,
    config: Nsga2Config,
    executor: Executor,
    recorder: Recorder,
    seed_genes: Vec<Vec<f64>>,
}

impl<P: Problem> Nsga2<P> {
    /// Bind a problem to a configuration. The evaluation fan-out uses
    /// the environment's worker count ([`Executor::from_env`], i.e.
    /// `FLOWER_THREADS` or the machine's available parallelism);
    /// results are bit-identical for every worker count.
    pub fn new(problem: P, config: Nsga2Config) -> Self {
        assert!(config.population >= 4, "population must be at least 4");
        assert!(
            config.population.is_multiple_of(2),
            "population must be even (offspring are produced in pairs)"
        );
        Nsga2 {
            problem,
            config,
            executor: Executor::from_env(),
            recorder: Recorder::disabled(),
            seed_genes: Vec::new(),
        }
    }

    /// Warm-start the initial population from known-good genomes (for
    /// example the previous replan's Pareto front). Seeds are clamped
    /// to the problem's bounds; seeds with the wrong gene count are
    /// skipped. The first `min(seeds, population)` slots take the seeds
    /// verbatim; every remaining slot is a seed (round-robin) jittered
    /// by polynomial mutation with per-variable probability 1, so the
    /// search explores around the seeded front instead of restarting
    /// from uniform noise. An empty (or entirely skipped) seed set
    /// leaves the cold-start path untouched, including its RNG draw
    /// order.
    pub fn with_seed_genes(mut self, seeds: Vec<Vec<f64>>) -> Self {
        self.seed_genes = seeds;
        self
    }

    /// Override the executor driving evaluation and sorting fan-out.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Attach an observability recorder. Each generation then emits an
    /// [`flower_obs::kind::NSGA2_GENERATION`] event carrying the first
    /// front's size and (for 2- and 3-objective problems) its exact
    /// hypervolume against a reference point fixed from the initial
    /// population. Emission happens in the sequential section of the
    /// loop, so traces stay byte-identical across worker counts.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Convenience: [`Nsga2::with_executor`] with a fixed worker count.
    pub fn with_workers(self, workers: usize) -> Self {
        self.with_executor(Executor::new(workers))
    }

    /// Access the wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Evaluate a batch of gene vectors into individuals, fanning out
    /// over the executor. Ordered collection + pure evaluation keep the
    /// result independent of the worker count.
    fn evaluate_all(&self, genes: Vec<Vec<f64>>) -> Vec<Individual> {
        let problem = &self.problem;
        self.executor
            .par_map_owned(genes, |_, g| Individual::evaluated(problem, g))
    }

    /// [`Nsga2::evaluate_all`] appended onto SoA storage: the fan-out
    /// and per-gene computation are identical; only where the results
    /// land changes (pushed in index order, so bit-identical columns at
    /// any worker count).
    fn evaluate_into(&self, genes: Vec<Vec<f64>>, pop: &mut SoaPopulation) {
        for ind in self.evaluate_all(genes) {
            pop.push(ind);
        }
    }

    /// The initial gene batch: uniform random draws when no seeds were
    /// provided (the cold path — draw order identical to every prior
    /// release), else the seeds clamped to bounds followed by mutated
    /// jitter around them (round-robin over the seeds, polynomial
    /// mutation with per-variable probability 1).
    fn initial_genes(&self, rng: &mut SimRng) -> Vec<Vec<f64>> {
        let n = self.config.population;
        let usable: Vec<Vec<f64>> = self
            .seed_genes
            .iter()
            .filter(|s| s.len() == self.problem.n_vars())
            .map(|s| {
                s.iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        let (lo, hi) = self.problem.bounds(i);
                        g.clamp(lo, hi)
                    })
                    .collect()
            })
            .collect();
        if usable.is_empty() {
            return (0..n).map(|_| random_genes(&self.problem, rng)).collect();
        }
        let mut genes: Vec<Vec<f64>> = Vec::with_capacity(n);
        genes.extend(usable.iter().take(n).cloned());
        while genes.len() < n {
            let mut jittered = usable[genes.len() % usable.len()].clone();
            polynomial_mutation(
                &self.problem,
                rng,
                &mut jittered,
                self.config.eta_mutation,
                1.0,
            );
            genes.push(jittered);
        }
        genes
    }

    /// Hypervolume reference point for progress tracing: the
    /// componentwise maximum over the initial population's objectives,
    /// pushed out by a margin so boundary points still dominate volume.
    /// `None` when tracing is off, the problem is not 2-/3-objective, or
    /// the initial objectives are not finite.
    fn trace_reference(&self, pop: &SoaPopulation) -> Option<Vec<f64>> {
        if !self.recorder.is_enabled() {
            return None;
        }
        let m = self.problem.n_objectives();
        if !(2..=3).contains(&m) {
            return None;
        }
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![f64::NEG_INFINITY; m];
        for i in 0..pop.len() {
            for (j, &o) in pop.objectives(i).iter().enumerate() {
                if o.is_finite() {
                    lo[j] = lo[j].min(o);
                    hi[j] = hi[j].max(o);
                }
            }
        }
        if hi.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(
            lo.iter()
                .zip(&hi)
                .map(|(&l, &h)| h + 0.1 * (h - l).max(1.0))
                .collect(),
        )
    }

    /// Emit one [`kind::NSGA2_GENERATION`] progress event for the
    /// population as it stands after survival selection.
    fn trace_generation(&self, generation: usize, pop: &SoaPopulation, reference: Option<&[f64]>) {
        if !self.recorder.is_enabled() {
            return;
        }
        let front: Vec<Vec<f64>> = (0..pop.len())
            .filter(|&i| pop.rank(i) == 0)
            .map(|i| pop.objectives(i).to_vec())
            .collect();
        let mut fields: Vec<(&'static str, FieldValue)> = vec![
            ("front_size", FieldValue::from(front.len())),
            ("generation", FieldValue::from(generation as u64)),
        ];
        if let Some(reference) = reference {
            let hv = hypervolume(&front, reference);
            fields.push(("hypervolume", FieldValue::from(hv)));
            self.recorder.gauge("nsga2.hypervolume", hv);
        }
        self.recorder.emit(kind::NSGA2_GENERATION, &fields);
        self.recorder.count("nsga2.generations", 1);
    }

    /// Run the full generational loop.
    pub fn run(&self) -> Nsga2Result {
        let mut rng = SimRng::seed(self.config.seed);
        let n = self.config.population;
        let mutation_prob = self
            .config
            .mutation_prob
            .unwrap_or(1.0 / self.problem.n_vars().max(1) as f64);
        let mut evaluations = 0u64;

        // Initial population: genes are drawn sequentially (preserving
        // the seed's draw order), evaluation fans out into SoA storage.
        let initial = self.initial_genes(&mut rng);
        evaluations += n as u64;
        let mut pop = SoaPopulation::for_problem(&self.problem, 2 * n);
        self.evaluate_into(initial, &mut pop);
        let fronts = fast_non_dominated_sort_soa(&mut pop, &self.executor);
        for front in &fronts {
            crowding_distance_soa(&mut pop, front);
        }
        let reference = self.trace_reference(&pop);
        self.trace_generation(0, &pop, reference.as_deref());

        // Buffers reused across generations: the combined (μ+λ) pool,
        // the offspring gene batch, and the survivor index list.
        let mut combined = SoaPopulation::for_problem(&self.problem, 2 * n);
        let mut offspring_genes: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut selected: Vec<usize> = Vec::with_capacity(n);

        for generation in 0..self.config.generations {
            // Variation: sequential (RNG draw order is the determinism
            // anchor); evaluation of the finished gene batch: parallel.
            offspring_genes.clear();
            while offspring_genes.len() < n {
                let p1 = binary_tournament_soa(&mut rng, &pop);
                let p2 = binary_tournament_soa(&mut rng, &pop);
                let (mut g1, mut g2) = sbx_crossover(
                    &self.problem,
                    &mut rng,
                    pop.genes(p1),
                    pop.genes(p2),
                    self.config.eta_crossover,
                    self.config.crossover_prob,
                );
                polynomial_mutation(
                    &self.problem,
                    &mut rng,
                    &mut g1,
                    self.config.eta_mutation,
                    mutation_prob,
                );
                polynomial_mutation(
                    &self.problem,
                    &mut rng,
                    &mut g2,
                    self.config.eta_mutation,
                    mutation_prob,
                );
                evaluations += 2;
                offspring_genes.push(g1);
                offspring_genes.push(g2);
            }

            // (μ+λ) survival: combine, sort, fill by fronts, truncate
            // the boundary front by crowding distance. Selection is
            // index-based and survivor rows are copied column-wise.
            combined.clear();
            combined.extend_from(&pop);
            self.evaluate_into(std::mem::take(&mut offspring_genes), &mut combined);
            let fronts = fast_non_dominated_sort_soa(&mut combined, &self.executor);
            selected.clear();
            for front in &fronts {
                crowding_distance_soa(&mut combined, front);
                if selected.len() + front.len() <= n {
                    selected.extend_from_slice(front);
                    if selected.len() == n {
                        break;
                    }
                } else {
                    let mut boundary: Vec<usize> = front.clone();
                    // total_cmp keeps NaN crowding (degenerate objectives)
                    // from panicking: NaN orders above every finite value
                    // in descending order here, i.e. it is kept — rank
                    // already quarantined NaN objectives in worst fronts.
                    boundary
                        .sort_by(|&a, &b| combined.crowding(b).total_cmp(&combined.crowding(a)));
                    selected.extend(boundary.iter().take(n - selected.len()));
                    break;
                }
            }
            pop.clear();
            for &i in &selected {
                pop.push_row_from(&combined, i);
            }
            self.trace_generation(generation + 1, &pop, reference.as_deref());
        }

        // Final bookkeeping sort so callers see coherent ranks; the
        // result converts back to array-of-structs at the API boundary.
        let mut pop = pop.to_individuals();
        let fronts = fast_non_dominated_sort_with(&mut pop, &self.executor);
        for front in &fronts {
            crowding_distance(&mut pop, front);
        }
        pop.sort_by(|a, b| {
            a.rank
                .cmp(&b.rank)
                .then_with(|| b.crowding.total_cmp(&a.crowding))
        });

        Nsga2Result {
            population: pop,
            evaluations,
            generations: self.config.generations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schaffer's SCH: minimize (x², (x−2)²), Pareto set x ∈ [0, 2].
    struct Sch;
    impl Problem for Sch {
        fn n_vars(&self) -> usize {
            1
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (-1_000.0, 1_000.0)
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0];
            out[1] = (x[0] - 2.0) * (x[0] - 2.0);
        }
    }

    /// ZDT1: 30 variables, front g=1, f2 = 1 − sqrt(f1).
    struct Zdt1;
    impl Problem for Zdt1 {
        fn n_vars(&self) -> usize {
            30
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            let f1 = x[0];
            let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
            out[0] = f1;
            out[1] = g * (1.0 - (f1 / g).sqrt());
        }
    }

    /// Constrained: minimize (x, y) s.t. x + y >= 1 on [0, 1]².
    struct ConstrSum;
    impl Problem for ConstrSum {
        fn n_vars(&self) -> usize {
            2
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn n_constraints(&self) -> usize {
            1
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0];
            out[1] = x[1];
        }
        fn constraints(&self, x: &[f64], out: &mut [f64]) {
            out[0] = (1.0 - (x[0] + x[1])).max(0.0);
        }
    }

    #[test]
    fn sch_front_converges() {
        let cfg = Nsga2Config {
            population: 60,
            generations: 80,
            seed: 42,
            ..Default::default()
        };
        let result = Nsga2::new(Sch, cfg).run();
        let front = result.pareto_front();
        assert!(!front.is_empty());
        for ind in &front {
            assert!(
                ind.genes[0] > -0.2 && ind.genes[0] < 2.2,
                "x={} off the Pareto set",
                ind.genes[0]
            );
        }
        // Front spread: should cover much of [0, 2].
        let min_x = front
            .iter()
            .map(|i| i.genes[0])
            .fold(f64::INFINITY, f64::min);
        let max_x = front
            .iter()
            .map(|i| i.genes[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_x - min_x > 1.0, "front collapsed: [{min_x}, {max_x}]");
        assert_eq!(result.generations, 80);
        assert!(result.evaluations >= 60 * 81);
    }

    #[test]
    fn zdt1_approaches_true_front() {
        let cfg = Nsga2Config {
            population: 100,
            generations: 200,
            seed: 7,
            ..Default::default()
        };
        let result = Nsga2::new(Zdt1, cfg).run();
        // On the true front f2 = 1 − sqrt(f1); measure mean deviation.
        let front = result.pareto_front();
        let mean_dev: f64 = front
            .iter()
            .map(|i| (i.objectives[1] - (1.0 - i.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / front.len() as f64;
        assert!(
            mean_dev < 0.05,
            "mean deviation from ZDT1 front: {mean_dev}"
        );
    }

    #[test]
    fn constrained_front_is_feasible() {
        let cfg = Nsga2Config {
            population: 60,
            generations: 60,
            seed: 3,
            ..Default::default()
        };
        let result = Nsga2::new(ConstrSum, cfg).run();
        let front = result.pareto_front();
        for ind in &front {
            assert!(
                ind.is_feasible(),
                "infeasible on final front: {:?}",
                ind.genes
            );
            // Pareto-optimal feasible points sit on x + y = 1.
            let sum = ind.genes[0] + ind.genes[1];
            assert!(sum < 1.1, "far inside the feasible region: {sum}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = Nsga2Config {
            population: 20,
            generations: 10,
            seed: 5,
            ..Default::default()
        };
        let r1 = Nsga2::new(Sch, cfg).run();
        let r2 = Nsga2::new(Sch, cfg).run();
        let g1: Vec<f64> = r1.population.iter().map(|i| i.genes[0]).collect();
        let g2: Vec<f64> = r2.population.iter().map(|i| i.genes[0]).collect();
        assert_eq!(g1, g2);
    }

    #[test]
    fn distinct_front_dedupes() {
        let cfg = Nsga2Config {
            population: 40,
            generations: 40,
            seed: 9,
            ..Default::default()
        };
        let result = Nsga2::new(Sch, cfg).run();
        let coarse = result.distinct_front(0);
        let fine = result.distinct_front(6);
        assert!(coarse.len() <= fine.len());
        assert!(!coarse.is_empty());
        // At integer resolution the SCH front has few distinct cells.
        assert!(
            coarse.len() <= 10,
            "coarse front too large: {}",
            coarse.len()
        );
    }

    #[test]
    fn traced_run_reports_progress_without_perturbing_the_search() {
        let cfg = Nsga2Config {
            population: 32,
            generations: 30,
            seed: 11,
            ..Default::default()
        };
        let plain = Nsga2::new(Sch, cfg).run();
        let recorder = Recorder::with_capacity(256);
        let traced = Nsga2::new(Sch, cfg).with_recorder(recorder.clone()).run();

        // The recorder observes; it must not change the search.
        let g1: Vec<f64> = plain.population.iter().map(|i| i.genes[0]).collect();
        let g2: Vec<f64> = traced.population.iter().map(|i| i.genes[0]).collect();
        assert_eq!(g1, g2);

        // One event per generation plus one for the initial population.
        let events: Vec<_> = recorder
            .events()
            .into_iter()
            .filter(|e| e.kind == kind::NSGA2_GENERATION)
            .collect();
        assert_eq!(events.len(), 31);
        assert_eq!(recorder.counter("nsga2.generations"), 31);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.f64("generation"), Some(i as f64));
            let front_size = e.f64("front_size").unwrap();
            assert!((1.0..=32.0).contains(&front_size));
            assert!(e.f64("hypervolume").unwrap() >= 0.0, "SCH is 2-objective");
        }
        // Elitism: the converged front dominates far more volume than the
        // random initial front.
        let first = events.first().unwrap().f64("hypervolume").unwrap();
        let last = events.last().unwrap().f64("hypervolume").unwrap();
        assert!(last > first, "hv {first} → {last}");
    }

    #[test]
    fn empty_seed_set_is_the_cold_path() {
        let cfg = Nsga2Config {
            population: 20,
            generations: 10,
            seed: 5,
            ..Default::default()
        };
        let cold = Nsga2::new(Sch, cfg).run();
        let seeded = Nsga2::new(Sch, cfg).with_seed_genes(Vec::new()).run();
        let g1: Vec<u64> = cold
            .population
            .iter()
            .map(|i| i.genes[0].to_bits())
            .collect();
        let g2: Vec<u64> = seeded
            .population
            .iter()
            .map(|i| i.genes[0].to_bits())
            .collect();
        assert_eq!(g1, g2, "empty seeds must not perturb the cold path");
    }

    #[test]
    fn seeds_are_clamped_and_wrong_arity_skipped() {
        let cfg = Nsga2Config {
            population: 4,
            generations: 0,
            seed: 1,
            ..Default::default()
        };
        // One out-of-bounds seed (clamped to 1000), one wrong-arity
        // seed (skipped). With zero generations the initial population
        // is returned as-is, sorted.
        let result = Nsga2::new(Sch, cfg)
            .with_seed_genes(vec![vec![5_000.0], vec![1.0, 2.0]])
            .run();
        assert_eq!(result.population.len(), 4);
        for ind in &result.population {
            assert!(
                (-1_000.0..=1_000.0).contains(&ind.genes[0]),
                "unclamped gene: {}",
                ind.genes[0]
            );
        }
        // Slot 0 holds the clamped seed verbatim.
        assert!(result.population.iter().any(|i| i.genes[0] == 1_000.0));
    }

    #[test]
    fn warm_start_converges_in_far_fewer_generations() {
        let cold_cfg = Nsga2Config {
            population: 40,
            generations: 60,
            seed: 21,
            ..Default::default()
        };
        let cold = Nsga2::new(Zdt1, cold_cfg).run();
        let seeds: Vec<Vec<f64>> = cold
            .pareto_front()
            .iter()
            .map(|i| i.genes.clone())
            .collect();
        // A short warm run seeded from the cold front must stay on the
        // front; a short cold run from uniform noise does not get there.
        let short_cfg = Nsga2Config {
            population: 40,
            generations: 8,
            seed: 22,
            ..Default::default()
        };
        let warm = Nsga2::new(Zdt1, short_cfg).with_seed_genes(seeds).run();
        let dev = |r: &Nsga2Result| -> f64 {
            let front = r.pareto_front();
            front
                .iter()
                .map(|i| (i.objectives[1] - (1.0 - i.objectives[0].sqrt())).abs())
                .sum::<f64>()
                / front.len() as f64
        };
        let short_cold = Nsga2::new(Zdt1, short_cfg).run();
        assert!(
            dev(&warm) < 0.2 * dev(&short_cold),
            "warm {} vs cold {}",
            dev(&warm),
            dev(&short_cold)
        );
    }

    #[test]
    #[should_panic(expected = "population must be even")]
    fn odd_population_rejected() {
        Nsga2::new(
            Sch,
            Nsga2Config {
                population: 21,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_population_rejected() {
        Nsga2::new(
            Sch,
            Nsga2Config {
                population: 2,
                ..Default::default()
            },
        );
    }
}
