//! The optimization-problem abstraction.

/// A box-bounded, real-valued multi-objective problem.
///
/// Conventions:
/// * every objective is **minimized** — a caller maximizing a quantity
///   (as Flower's share analyzer maximizes resource shares) negates it;
/// * constraints are inequality constraints reported as **violation
///   magnitudes**: `0.0` means satisfied, a positive value measures how
///   badly the constraint is broken. Deb's constraint-domination rule in
///   the sorter consumes these directly;
/// * implementations are `Sync` so the optimizer can fan population
///   evaluation out across threads — `evaluate`/`constraints` take
///   `&self` and must be pure functions of `x` (no interior mutability,
///   no ambient RNG), which is also what the same-seed ⇒ same-front
///   determinism contract already demanded.
pub trait Problem: Sync {
    /// Number of decision variables.
    fn n_vars(&self) -> usize;

    /// Number of objectives (all minimized).
    fn n_objectives(&self) -> usize;

    /// Number of inequality constraints (default: none).
    fn n_constraints(&self) -> usize {
        0
    }

    /// Inclusive lower/upper bound of decision variable `i`.
    fn bounds(&self, i: usize) -> (f64, f64);

    /// Evaluate the objectives of `x` into `out`
    /// (`out.len() == n_objectives()`).
    fn evaluate(&self, x: &[f64], out: &mut [f64]);

    /// Evaluate constraint violations of `x` into `out`
    /// (`out.len() == n_constraints()`). Entries must be `>= 0`.
    /// The default writes nothing, matching `n_constraints() == 0`.
    fn constraints(&self, x: &[f64], out: &mut [f64]) {
        let _ = x;
        debug_assert!(
            out.is_empty(),
            "override constraints() when n_constraints() > 0"
        );
    }
}

/// Helper: the total violation of a constraint vector (sum of positive
/// entries; negative entries are treated as satisfied).
pub fn total_violation(violations: &[f64]) -> f64 {
    violations.iter().map(|&v| v.max(0.0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;
    impl Problem for Toy {
        fn n_vars(&self) -> usize {
            2
        }
        fn n_objectives(&self) -> usize {
            1
        }
        fn bounds(&self, _: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] + x[1];
        }
    }

    #[test]
    fn default_constraint_count_is_zero() {
        assert_eq!(Toy.n_constraints(), 0);
        let mut out: [f64; 0] = [];
        Toy.constraints(&[0.5, 0.5], &mut out); // must not panic
    }

    #[test]
    fn total_violation_sums_positives() {
        assert_eq!(total_violation(&[]), 0.0);
        assert_eq!(total_violation(&[0.0, 0.0]), 0.0);
        assert_eq!(total_violation(&[1.5, 2.5]), 4.0);
        assert_eq!(total_violation(&[-3.0, 2.0]), 2.0);
    }
}
