//! Variation and selection operators: simulated binary crossover (SBX),
//! polynomial mutation, and binary tournament selection — the standard
//! real-coded NSGA-II operator suite from Deb's reference implementation.

use flower_sim::SimRng;

use crate::individual::Individual;
use crate::problem::Problem;
use crate::soa::SoaPopulation;
use crate::sorting::crowded_less;

/// Simulated binary crossover of two parent gene vectors.
///
/// `eta_c` is the distribution index (larger = children closer to the
/// parents; Deb's reference uses 15–20 for real-coded GAs). Each variable
/// is crossed with probability 0.5, mirroring the reference code.
pub fn sbx_crossover<P: Problem>(
    problem: &P,
    rng: &mut SimRng,
    a: &[f64],
    b: &[f64],
    eta_c: f64,
    crossover_prob: f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = a.to_vec();
    let mut c2 = b.to_vec();
    if !rng.chance(crossover_prob) {
        return (c1, c2);
    }
    for (i, (&pa, &pb)) in a.iter().zip(b).enumerate() {
        if !rng.chance(0.5) {
            continue;
        }
        let (x1, x2) = (pa.min(pb), pa.max(pb));
        if (x2 - x1).abs() < 1e-14 {
            continue;
        }
        let (lo, hi) = problem.bounds(i);
        let u = rng.next_f64();

        // Child 1 (towards the lower parent).
        let beta = 1.0 + 2.0 * (x1 - lo) / (x2 - x1);
        let alpha = 2.0 - beta.powf(-(eta_c + 1.0));
        let beta_q = sbx_beta_q(u, alpha, eta_c);
        let mut y1 = 0.5 * ((x1 + x2) - beta_q * (x2 - x1));

        // Child 2 (towards the upper parent).
        let beta = 1.0 + 2.0 * (hi - x2) / (x2 - x1);
        let alpha = 2.0 - beta.powf(-(eta_c + 1.0));
        let beta_q = sbx_beta_q(u, alpha, eta_c);
        let mut y2 = 0.5 * ((x1 + x2) + beta_q * (x2 - x1));

        y1 = y1.clamp(lo, hi);
        y2 = y2.clamp(lo, hi);
        // Random swap so neither child is biased low/high per variable.
        if rng.chance(0.5) {
            c1[i] = y2;
            c2[i] = y1;
        } else {
            c1[i] = y1;
            c2[i] = y2;
        }
    }
    (c1, c2)
}

fn sbx_beta_q(u: f64, alpha: f64, eta_c: f64) -> f64 {
    if u <= 1.0 / alpha {
        (u * alpha).powf(1.0 / (eta_c + 1.0))
    } else {
        (1.0 / (2.0 - u * alpha)).powf(1.0 / (eta_c + 1.0))
    }
}

/// Polynomial mutation with distribution index `eta_m`; each variable
/// mutates independently with probability `mutation_prob` (conventionally
/// `1 / n_vars`).
pub fn polynomial_mutation<P: Problem>(
    problem: &P,
    rng: &mut SimRng,
    genes: &mut [f64],
    eta_m: f64,
    mutation_prob: f64,
) {
    for (i, gene) in genes.iter_mut().enumerate() {
        if !rng.chance(mutation_prob) {
            continue;
        }
        let (lo, hi) = problem.bounds(i);
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        let x = *gene;
        let d1 = (x - lo) / span;
        let d2 = (hi - x) / span;
        let u = rng.next_f64();
        let mut_pow = 1.0 / (eta_m + 1.0);
        let delta_q = if u < 0.5 {
            let xy = 1.0 - d1;
            let val = 2.0 * u + (1.0 - 2.0 * u) * xy.powf(eta_m + 1.0);
            val.powf(mut_pow) - 1.0
        } else {
            let xy = 1.0 - d2;
            let val = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * xy.powf(eta_m + 1.0);
            1.0 - val.powf(mut_pow)
        };
        *gene = (x + delta_q * span).clamp(lo, hi);
    }
}

/// Binary tournament under the crowded-comparison operator: draws two
/// random members and returns the index of the preferred one (ties broken
/// by a coin flip).
pub fn binary_tournament(rng: &mut SimRng, pop: &[Individual]) -> usize {
    assert!(!pop.is_empty(), "tournament over empty population");
    let i = rng.below(pop.len() as u64) as usize;
    let j = rng.below(pop.len() as u64) as usize;
    if crowded_less(&pop[i], &pop[j]) {
        i
    } else if crowded_less(&pop[j], &pop[i]) {
        j
    } else if rng.chance(0.5) {
        i
    } else {
        j
    }
}

/// [`binary_tournament`] over SoA storage: the same two `below` draws,
/// the same crowded-comparison rule (rank then crowding), the same
/// coin-flip tiebreak — reading the rank/crowding columns instead of
/// per-individual structs, so the RNG stream and the winner are
/// identical to the array-of-structs path.
pub fn binary_tournament_soa(rng: &mut SimRng, pop: &SoaPopulation) -> usize {
    assert!(!pop.is_empty(), "tournament over empty population");
    let i = rng.below(pop.len() as u64) as usize;
    let j = rng.below(pop.len() as u64) as usize;
    let less = |a: usize, b: usize| {
        pop.rank(a) < pop.rank(b)
            || (pop.rank(a) == pop.rank(b) && pop.crowding(a) > pop.crowding(b))
    };
    if less(i, j) {
        i
    } else if less(j, i) {
        j
    } else if rng.chance(0.5) {
        i
    } else {
        j
    }
}

/// Sample a uniformly random gene vector within the problem's bounds.
pub fn random_genes<P: Problem>(problem: &P, rng: &mut SimRng) -> Vec<f64> {
    (0..problem.n_vars())
        .map(|i| {
            let (lo, hi) = problem.bounds(i);
            rng.uniform(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Box2;
    impl Problem for Box2 {
        fn n_vars(&self) -> usize {
            2
        }
        fn n_objectives(&self) -> usize {
            1
        }
        fn bounds(&self, i: usize) -> (f64, f64) {
            if i == 0 {
                (0.0, 10.0)
            } else {
                (-5.0, 5.0)
            }
        }
        fn evaluate(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] + x[1];
        }
    }

    #[test]
    fn random_genes_respect_bounds() {
        let mut rng = SimRng::seed(1);
        for _ in 0..1_000 {
            let g = random_genes(&Box2, &mut rng);
            assert!((0.0..=10.0).contains(&g[0]));
            assert!((-5.0..=5.0).contains(&g[1]));
        }
    }

    #[test]
    fn sbx_children_respect_bounds() {
        let mut rng = SimRng::seed(2);
        for _ in 0..2_000 {
            let a = random_genes(&Box2, &mut rng);
            let b = random_genes(&Box2, &mut rng);
            let (c1, c2) = sbx_crossover(&Box2, &mut rng, &a, &b, 15.0, 0.9);
            for c in [&c1, &c2] {
                assert!((0.0..=10.0).contains(&c[0]), "gene0={}", c[0]);
                assert!((-5.0..=5.0).contains(&c[1]), "gene1={}", c[1]);
            }
        }
    }

    #[test]
    fn sbx_with_zero_probability_copies_parents() {
        let mut rng = SimRng::seed(3);
        let a = vec![1.0, 2.0];
        let b = vec![3.0, -1.0];
        let (c1, c2) = sbx_crossover(&Box2, &mut rng, &a, &b, 15.0, 0.0);
        assert_eq!(c1, a);
        assert_eq!(c2, b);
    }

    #[test]
    fn sbx_children_near_parents_for_high_eta() {
        // Large eta_c concentrates children around parents.
        let mut rng = SimRng::seed(4);
        let a = vec![4.0, 0.0];
        let b = vec![6.0, 1.0];
        let mut max_dev: f64 = 0.0;
        for _ in 0..500 {
            let (c1, c2) = sbx_crossover(&Box2, &mut rng, &a, &b, 100.0, 1.0);
            for c in [c1, c2] {
                // deviation beyond the parent interval
                let dev0 = (c[0] - 5.0).abs() - 1.0;
                max_dev = max_dev.max(dev0);
            }
        }
        assert!(max_dev < 0.5, "children strayed {max_dev} beyond parents");
    }

    #[test]
    fn mutation_respects_bounds_and_changes_values() {
        let mut rng = SimRng::seed(5);
        let mut changed = 0;
        for _ in 0..500 {
            let mut g = vec![5.0, 0.0];
            polynomial_mutation(&Box2, &mut rng, &mut g, 20.0, 1.0);
            assert!((0.0..=10.0).contains(&g[0]));
            assert!((-5.0..=5.0).contains(&g[1]));
            if g != vec![5.0, 0.0] {
                changed += 1;
            }
        }
        assert!(
            changed > 450,
            "mutation with p=1 changed only {changed}/500"
        );
    }

    #[test]
    fn mutation_zero_probability_is_identity() {
        let mut rng = SimRng::seed(6);
        let mut g = vec![5.0, 0.0];
        polynomial_mutation(&Box2, &mut rng, &mut g, 20.0, 0.0);
        assert_eq!(g, vec![5.0, 0.0]);
    }

    #[test]
    fn tournament_prefers_better_rank() {
        let mut rng = SimRng::seed(7);
        let make = |rank| Individual {
            genes: vec![],
            objectives: vec![0.0],
            violations: vec![],
            rank,
            crowding: 0.0,
        };
        let pop = vec![make(0), make(5)];
        let mut wins0 = 0;
        for _ in 0..1_000 {
            if binary_tournament(&mut rng, &pop) == 0 {
                wins0 += 1;
            }
        }
        // Individual 0 wins every mixed tournament and half of the
        // self-tournaments: expected 750/1000.
        assert!(wins0 > 650, "wins0={wins0}");
    }

    #[test]
    fn tournament_soa_draws_and_winners_match_aos() {
        let make = |rank, crowding| Individual {
            genes: vec![0.0, 0.0],
            objectives: vec![0.0],
            violations: vec![],
            rank,
            crowding,
        };
        let pop = vec![
            make(0, 1.0),
            make(0, f64::INFINITY),
            make(1, 0.5),
            make(2, 0.0),
            make(0, 1.0),
        ];
        let mut soa = SoaPopulation::for_problem(&Box2, pop.len());
        for ind in &pop {
            soa.push(ind.clone());
        }
        let mut rng_a = SimRng::seed(11);
        let mut rng_b = SimRng::seed(11);
        for _ in 0..2_000 {
            assert_eq!(
                binary_tournament(&mut rng_a, &pop),
                binary_tournament_soa(&mut rng_b, &soa)
            );
        }
        // Both RNGs consumed identical draw counts.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }
}
