// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Record-generation throughput of the click-stream workload generator
//! and the arrival-rate processes feeding it.

use flower_bench::harness::{black_box, BenchmarkId, Criterion};
use flower_bench::{criterion_group, criterion_main};
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::{
    ArrivalProcess, ClickStreamConfig, ClickStreamGenerator, DiurnalRate, MmppRate,
};

fn workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");

    for &n in &[1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("generate_records", n), &n, |b, &n| {
            let mut generator =
                ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(1));
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(generator.generate(SimTime::from_secs(t), n))
            });
        });
    }

    group.bench_function("diurnal_rate_query", |b| {
        let mut process = DiurnalRate::new(
            1_000.0,
            800.0,
            SimDuration::from_hours(2),
            SimDuration::ZERO,
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(process.rate(SimTime::from_secs(t)))
        });
    });

    group.bench_function("mmpp_rate_query", |b| {
        let mut process = MmppRate::new(
            100.0,
            1_000.0,
            SimDuration::from_mins(5),
            SimDuration::from_mins(5),
            SimRng::seed(2),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(process.rate(SimTime::from_secs(t)))
        });
    });

    group.finish();
}

criterion_group!(benches, workload);
criterion_main!(benches);
