// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Per-tick cost of each controller's `step` — establishes that the
//! control loop adds negligible overhead to a monitoring period.

use flower_bench::harness::{black_box, Criterion};
use flower_bench::{criterion_group, criterion_main};
use flower_control::{
    AdaptiveConfig, AdaptiveController, Controller, FixedGainConfig, FixedGainController,
    QuasiAdaptiveConfig, QuasiAdaptiveController, RuleBasedConfig, RuleBasedController,
};

fn controllers(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_step");
    // A repeatable measurement sequence around the setpoint.
    let measurements: Vec<f64> = (0..64)
        .map(|i| 60.0 + 30.0 * ((i as f64) * 0.7).sin())
        .collect();

    group.bench_function("adaptive", |b| {
        let mut controller = AdaptiveController::new(AdaptiveConfig::default());
        let mut i = 0;
        b.iter(|| {
            let y = measurements[i % measurements.len()];
            i += 1;
            black_box(controller.step(black_box(y)))
        });
    });

    group.bench_function("adaptive_no_memory", |b| {
        let mut controller = AdaptiveController::new(AdaptiveConfig {
            gain_memory: false,
            ..Default::default()
        });
        let mut i = 0;
        b.iter(|| {
            let y = measurements[i % measurements.len()];
            i += 1;
            black_box(controller.step(black_box(y)))
        });
    });

    group.bench_function("fixed_gain", |b| {
        let mut controller = FixedGainController::new(FixedGainConfig::default());
        let mut i = 0;
        b.iter(|| {
            let y = measurements[i % measurements.len()];
            i += 1;
            black_box(controller.step(black_box(y)))
        });
    });

    group.bench_function("quasi_adaptive", |b| {
        let mut controller = QuasiAdaptiveController::new(QuasiAdaptiveConfig::default());
        let mut i = 0;
        b.iter(|| {
            let y = measurements[i % measurements.len()];
            i += 1;
            black_box(controller.step(black_box(y)))
        });
    });

    group.bench_function("rule_based", |b| {
        let mut controller = RuleBasedController::new(RuleBasedConfig::default());
        let mut i = 0;
        b.iter(|| {
            let y = measurements[i % measurements.len()];
            i += 1;
            black_box(controller.step(black_box(y)))
        });
    });

    group.finish();
}

criterion_group!(benches, controllers);
criterion_main!(benches);
