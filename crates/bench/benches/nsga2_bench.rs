// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! NSGA-II throughput on the paper's share problem (A3's performance
//! half): time per full run at the reference settings and per-generation
//! scaling.

use flower_bench::harness::{BenchmarkId, Criterion};
use flower_bench::{criterion_group, criterion_main};
use flower_core::share::ShareProblem;
use flower_nsga2::{Nsga2, Nsga2Config};

fn nsga2_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2");
    group.sample_size(10);

    for &(pop, gens) in &[(40usize, 20usize), (100, 50), (100, 250)] {
        group.bench_with_input(
            BenchmarkId::new("share_problem", format!("pop{pop}_gen{gens}")),
            &(pop, gens),
            |b, &(pop, gens)| {
                b.iter(|| {
                    Nsga2::new(
                        ShareProblem::worked_example(0.75),
                        Nsga2Config {
                            population: pop,
                            generations: gens,
                            seed: 1,
                            ..Default::default()
                        },
                    )
                    .run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, nsga2_runs);
criterion_main!(benches);
