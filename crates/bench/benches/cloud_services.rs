// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Per-tick cost of the simulated cloud services, individually and wired
//! into the full engine — the dominant cost of long elasticity episodes.

use flower_bench::harness::{black_box, Criterion};
use flower_bench::{criterion_group, criterion_main};
use flower_cloud::{
    CloudEngine, DynamoConfig, DynamoTable, EngineConfig, KinesisConfig, KinesisStream,
    StormCluster, StormConfig, Topology,
};
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::{ClickStreamConfig, ClickStreamGenerator};

fn services(c: &mut Criterion) {
    let mut group = c.benchmark_group("cloud");
    let dt = SimDuration::from_secs(1);

    let mut generator = ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(1));
    let batch = generator.generate(SimTime::ZERO, 2_000);

    group.bench_function("kinesis_ingest_2000rec", |b| {
        let mut stream = KinesisStream::new(KinesisConfig {
            initial_shards: 4,
            ..Default::default()
        });
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(stream.ingest(&batch, SimTime::from_secs(t), dt))
        });
    });

    group.bench_function("storm_process_2000tuples", |b| {
        let mut cluster = StormCluster::new(
            StormConfig {
                initial_vms: 4,
                ..Default::default()
            },
            Topology::clickstream(),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(cluster.process(2_000, SimTime::from_secs(t), dt))
        });
    });

    group.bench_function("dynamo_write_100items", |b| {
        let mut table = DynamoTable::new(DynamoConfig {
            initial_wcu: 200.0,
            ..Default::default()
        });
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(table.write(100, 512, SimTime::from_secs(t), dt))
        });
    });

    group.bench_function("engine_full_tick_2000rec", |b| {
        let mut engine = CloudEngine::new(EngineConfig {
            kinesis: KinesisConfig {
                initial_shards: 4,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(engine.tick(&batch, SimTime::from_secs(t), dt))
        });
    });

    group.finish();
}

criterion_group!(benches, services);
criterion_main!(benches);
