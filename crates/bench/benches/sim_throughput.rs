// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Event throughput of the discrete-event kernel and the PRNG — the
//! floor under every simulated experiment's wall time.

use flower_bench::harness::{black_box, Criterion};
use flower_bench::{criterion_group, criterion_main};
use flower_sim::{Scheduler, SimDuration, SimRng, SimTime};

fn kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");

    group.bench_function("schedule_and_run_10k_events", |b| {
        b.iter(|| {
            let mut sched: Scheduler<u64> = Scheduler::new();
            for i in 0..10_000u64 {
                sched.schedule_at(SimTime::from_millis(i), |_, st| {
                    *st += 1;
                });
            }
            let mut state = 0u64;
            sched.run(&mut state);
            black_box(state)
        });
    });

    group.bench_function("periodic_event_10k_firings", |b| {
        b.iter(|| {
            let mut sched: Scheduler<u64> = Scheduler::new();
            sched.schedule_periodic(
                SimTime::ZERO,
                SimDuration::from_millis(1),
                |_, st: &mut u64| {
                    *st += 1;
                    *st < 10_000
                },
            );
            let mut state = 0u64;
            sched.run(&mut state);
            black_box(state)
        });
    });

    group.bench_function("rng_next_u64", |b| {
        let mut rng = SimRng::seed(1);
        b.iter(|| black_box(rng.next_u64()));
    });

    group.bench_function("rng_poisson_1000", |b| {
        let mut rng = SimRng::seed(2);
        b.iter(|| black_box(rng.poisson(black_box(1_000.0))));
    });

    group.finish();
}

criterion_group!(benches, kernel);
criterion_main!(benches);
