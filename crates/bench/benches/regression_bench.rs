// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Cost of the dependency analyzer's statistical primitives at the trace
//! lengths experiments produce (minutes to days of per-minute samples).

use flower_bench::harness::{black_box, BenchmarkId, Criterion};
use flower_bench::{criterion_group, criterion_main};
use flower_sim::SimRng;
use flower_stats::{cross_correlation, pearson, MultipleOls, SimpleOls};

fn data(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SimRng::seed(seed);
    let x: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 60_000.0)).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| 0.0002 * v + 4.8 + rng.normal(0.0, 0.5))
        .collect();
    (x, y)
}

fn regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    for &n in &[550usize, 5_000, 50_000] {
        let (x, y) = data(n, 1);
        group.bench_with_input(BenchmarkId::new("simple_ols", n), &n, |b, _| {
            b.iter(|| SimpleOls::fit(black_box(&x), black_box(&y)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("pearson", n), &n, |b, _| {
            b.iter(|| pearson(black_box(&x), black_box(&y)).unwrap());
        });
    }

    let (x, y) = data(550, 2);
    group.bench_function("cross_correlation_550_lag30", |b| {
        b.iter(|| cross_correlation(black_box(&x), black_box(&y), 30).unwrap());
    });

    let mut rng = SimRng::seed(3);
    let xs: Vec<Vec<f64>> = (0..2_000)
        .map(|_| (0..4).map(|_| rng.uniform(0.0, 10.0)).collect())
        .collect();
    let ym: Vec<f64> = xs
        .iter()
        .map(|r| 1.0 + r.iter().sum::<f64>() + rng.normal(0.0, 0.1))
        .collect();
    group.bench_function("multiple_ols_2000x4", |b| {
        b.iter(|| MultipleOls::fit(black_box(&xs), black_box(&ym)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, regression);
criterion_main!(benches);
