// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **E5 — holistic vs partial vs static provisioning.**
//!
//! The paper's introduction motivates *holistic* elasticity with the
//! observation (citing Zhu et al., HotCloud'12) that "the ability to
//! scale down both web servers and cache tier leads to 65% saving of the
//! peak operational cost, compared to 45% if we only consider resizing
//! the web tier". This experiment reproduces the shape on our flow: a
//! diurnal workload with a ~4× peak/trough ratio, three policies —
//!
//! * **static-peak** — every layer provisioned for the peak, no scaling;
//! * **analytics-only** — only the analytics (VM) tier scales, the
//!   single-tier policy of the citation;
//! * **holistic** — Flower scales all three layers.
//!
//! Expected: cost(holistic) < cost(analytics-only) < cost(static-peak),
//! with comparable delivery (ingest loss).
//!
//! ```text
//! cargo run --release -p flower-bench --bin exp_holistic [--seed N]
//! ```

use flower_bench::seed_arg;
use flower_core::config::ControllerSpec;
use flower_core::flow::{FlowBuilder, Layer, Platform};
use flower_core::prelude::*;

fn diurnal() -> Workload {
    // ~700 → ~2,900 records/s: a 4× swing, two 2-hour cycles below.
    Workload::diurnal(1_800.0, 1_100.0)
}

/// Peak-sized deployment: 4 shards (peak 2,900 < 4,000), 3 VMs, 250 WCU.
fn peak_flow() -> flower_core::flow::FlowSpec {
    FlowBuilder::new("peak-sized")
        .ingestion(Platform::kinesis("clicks", 4))
        .analytics(Platform::storm("counter", 3))
        .storage(Platform::dynamo("aggregates", 250.0))
        .build()
        .expect("valid flow")
}

struct Policy {
    name: &'static str,
    report: EpisodeReport,
}

fn main() {
    let seed = seed_arg(9);
    const MINUTES: u64 = 240; // two full diurnal cycles

    let static_peak = {
        let mut m = ElasticityManager::builder(peak_flow())
            .workload(diurnal())
            .all_controllers(ControllerSpec::Static)
            .seed(seed)
            .build()
            .expect("workload attached above");
        Policy {
            name: "static-peak",
            report: m.run_for_mins(MINUTES),
        }
    };

    let analytics_only = {
        let mut m = ElasticityManager::builder(peak_flow())
            .workload(diurnal())
            .controller(Layer::INGESTION, ControllerSpec::Static)
            .controller(Layer::ANALYTICS, ControllerSpec::adaptive(60.0))
            .controller(Layer::STORAGE, ControllerSpec::Static)
            .seed(seed)
            .build()
            .expect("workload attached above");
        Policy {
            name: "analytics-only",
            report: m.run_for_mins(MINUTES),
        }
    };

    let holistic = {
        let mut m = ElasticityManager::builder(peak_flow())
            .workload(diurnal())
            .seed(seed)
            .build()
            .expect("workload attached above");
        Policy {
            name: "holistic",
            report: m.run_for_mins(MINUTES),
        }
    };

    println!("E5 — holistic vs partial scaling ({MINUTES} min diurnal, seed {seed})");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10}",
        "policy", "cost $", "saving%", "loss%", "actions"
    );
    let base = static_peak.report.total_cost_dollars;
    for p in [&static_peak, &analytics_only, &holistic] {
        println!(
            "{:<16} {:>10.4} {:>10.1} {:>12.3} {:>10}",
            p.name,
            p.report.total_cost_dollars,
            (1.0 - p.report.total_cost_dollars / base) * 100.0,
            p.report.ingest_loss_rate() * 100.0,
            p.report.total_actions()
        );
    }

    let h = holistic.report.total_cost_dollars;
    let a = analytics_only.report.total_cost_dollars;
    println!("\n== shape checks (paper's citation: 65% holistic vs 45% single-tier) ==");
    println!(
        "  holistic saves more than analytics-only: {} ({:.1}% vs {:.1}%)",
        if h < a { "PASS" } else { "FAIL" },
        (1.0 - h / base) * 100.0,
        (1.0 - a / base) * 100.0
    );
    println!(
        "  both save vs static peak: {}",
        if h < base && a < base { "PASS" } else { "FAIL" }
    );
    println!(
        "  delivery comparable (holistic loss ≤ static loss + 5%): {}",
        if holistic.report.ingest_loss_rate() <= static_peak.report.ingest_loss_rate() + 0.05 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
