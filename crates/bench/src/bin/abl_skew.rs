// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **A4 — ablation: hot-key skew and the monitoring sensor's altitude.**
//!
//! The paper's first challenge (§1) is "heterogeneity of workloads": a
//! skewed partition-key distribution saturates individual Kinesis shards
//! while the stream-level *average* utilization looks healthy — the
//! pathology coarse autoscaling rules miss. This ablation runs the same
//! skewed click-stream twice, once with the ingestion controller fed by
//! the stream-average sensor and once by the enhanced shard-level
//! (hottest-shard) sensor.
//!
//! Expected shape: under skew, the average-fed controller under-provisions
//! and throttles heavily; the hot-shard-fed controller over-provisions
//! (shards don't help a single hot key much — the honest finding) but
//! still cuts throttling. Under uniform keys the two behave alike.
//!
//! ```text
//! cargo run --release -p flower-bench --bin abl_skew [--seed N]
//! ```

use flower_bench::seed_arg;
use flower_core::flow::{clickstream_flow, Layer};
use flower_core::prelude::*;
use flower_workload::ClickStreamConfig;

fn episode(skewed: bool, hot_sensor: bool, seed: u64) -> EpisodeReport {
    let click = if skewed {
        ClickStreamConfig {
            hot_user_fraction: 0.6,
            hot_user_count: 3,
            ..Default::default()
        }
    } else {
        ClickStreamConfig::default()
    };
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::constant(2_500.0).with_click_config(click))
        .hot_shard_sensor(hot_sensor)
        .seed(seed)
        .build()
        .expect("workload attached above");
    manager.run_for_mins(45)
}

fn main() {
    let seed = seed_arg(5);
    println!("A4 — hot-key skew vs monitoring sensor (45 min @ 2,500 rec/s, seed {seed})");
    println!(
        "{:>8} {:>12} {:>14} {:>8} {:>12} {:>10}",
        "keys", "sensor", "thr.ingest", "loss%", "final shards", "cost $"
    );

    let mut results = Vec::new();
    for (skewed, label) in [(false, "uniform"), (true, "skewed")] {
        for (hot, sensor) in [(false, "average"), (true, "hot-shard")] {
            let report = episode(skewed, hot, seed);
            let shards = report.actuators(Layer::INGESTION).last().unwrap().1;
            println!(
                "{:>8} {:>12} {:>14} {:>8.2} {:>12.0} {:>10.4}",
                label,
                sensor,
                report.throttled_ingest,
                report.ingest_loss_rate() * 100.0,
                shards,
                report.total_cost_dollars
            );
            results.push((skewed, hot, report));
        }
    }

    let loss = |skewed: bool, hot: bool| {
        results
            .iter()
            .find(|(s, h, _)| *s == skewed && *h == hot)
            .map(|(_, _, r)| r.ingest_loss_rate())
            .expect("present")
    };
    println!("\n== shape checks ==");
    println!(
        "  skew hurts the average-fed controller: {} ({:.1}% vs {:.1}% uniform)",
        if loss(true, false) > loss(false, false) + 0.02 {
            "PASS"
        } else {
            "FAIL"
        },
        loss(true, false) * 100.0,
        loss(false, false) * 100.0
    );
    println!(
        "  the hot-shard sensor cuts skewed-key loss: {} ({:.1}% vs {:.1}%)",
        if loss(true, true) < loss(true, false) {
            "PASS"
        } else {
            "FAIL"
        },
        loss(true, true) * 100.0,
        loss(true, false) * 100.0
    );
    println!(
        "  under uniform keys the sensors roughly agree: {} ({:.1}% vs {:.1}%)",
        if (loss(false, true) - loss(false, false)).abs() < 0.05 {
            "PASS"
        } else {
            "FAIL"
        },
        loss(false, true) * 100.0,
        loss(false, false) * 100.0
    );
}
