// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **B1 — machine-readable NSGA-II performance baseline.**
//!
//! Times the hot paths the parallel-execution and warm-start PRs
//! touched and emits a `BENCH_nsga2.json` snapshot:
//!
//! * full NSGA-II runs on an evaluation-heavy ZDT1-class problem
//!   (population ≥ 200) with 1 worker vs. all available workers;
//! * replanner-shaped share solves of the paper's worked example,
//!   cold (uniform-noise start, full generation budget) vs. warm
//!   (seeded from an epsilon-archived front, refinement budget);
//! * `fast_non_dominated_sort` on a large population, serial triangular
//!   pass vs. row-parallel;
//! * the non-dominated filter, sort-then-sweep vs. the naive all-pairs
//!   scan it replaced;
//! * the event-driven episode core on a quiet-heavy 1-hour episode,
//!   tick-compat cadence (every engine second simulated) vs.
//!   fast-forward (quiet windows jumped to the next scheduled event).
//!
//! The JSON records the machine's core count — parallel speedups are
//! only meaningful on multi-core hosts, and a single-core container
//! will honestly report ~1× for them while still showing the
//! algorithmic (filter, warm-start) wins.
//!
//! Comparisons whose name ends in `_speedup` / `_overhead` (or the
//! warm-vs-cold pair) promise a direction: baseline ≥ candidate. When
//! a first pass contradicts that — as scheduler noise once shipped
//! `recorder_disabled_overhead` at 0.865× — the pair is re-measured
//! with triple the samples, up to twice, before the honest final
//! number is published.
//!
//! ```text
//! cargo run --release -p flower-bench --bin bench_nsga2 [--smoke] [--out PATH] [--seed N]
//! ```
//!
//! `--smoke` shrinks every size so the whole run takes seconds and, by
//! default, writes under `target/` so the committed baseline at the
//! repo root is not clobbered by CI.

use std::io::Write as _;

use flower_bench::harness::{measure, Measurement};
use flower_bench::seed_arg;
use flower_core::flow::clickstream_flow;
use flower_core::prelude::{
    ElasticityManager, ShareAnalyzer, ShareProblem, SimDuration, SimTime, Workload,
};
use flower_nsga2::sorting::fast_non_dominated_sort_with;
use flower_nsga2::{EpsilonArchive, Executor, Individual, Nsga2, Nsga2Config, Problem};
use flower_obs::Recorder;

/// ZDT1 with an artificially expensive evaluation, standing in for the
/// cost-model evaluations of a real provisioning-plan search. The inner
/// loop is deterministic and contributes nothing to the objectives'
/// *location* on the front, only to the evaluation's price tag.
struct HeavyZdt1 {
    /// Extra transcendental iterations per evaluation.
    weight: u32,
}

impl Problem for HeavyZdt1 {
    fn n_vars(&self) -> usize {
        30
    }
    fn n_objectives(&self) -> usize {
        2
    }
    fn bounds(&self, _: usize) -> (f64, f64) {
        (0.0, 1.0)
    }
    fn evaluate(&self, x: &[f64], out: &mut [f64]) {
        let mut ballast = 0.0f64;
        for k in 0..self.weight {
            ballast += (x[0] + f64::from(k)).sin().abs().sqrt();
        }
        let f1 = x[0] + ballast * 1e-300; // keep the work observable
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        out[0] = f1;
        out[1] = g * (1.0 - (f1 / g).sqrt());
    }
}

/// The naive O(n²) filter `hypervolume.rs` used before the
/// sort-then-sweep rewrite — kept here as the comparison baseline.
fn naive_filter(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut front: Vec<Vec<f64>> = Vec::new();
    'outer: for p in points {
        for q in points {
            if q != p && q.iter().zip(p).all(|(a, b)| a <= b) && q.iter().zip(p).any(|(a, b)| a < b)
            {
                continue 'outer;
            }
        }
        if !front.contains(p) {
            front.push(p.clone());
        }
    }
    front
}

/// xorshift point cloud, identical across runs.
fn point_cloud(n: usize, dim: usize, mut state: u64) -> Vec<Vec<f64>> {
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..dim).map(|_| next() * 10.0).collect())
        .collect()
}

struct NamedResult {
    name: &'static str,
    m: Measurement,
}

fn run_nsga2(pop: usize, gens: usize, weight: u32, seed: u64, workers: usize) -> usize {
    let cfg = Nsga2Config {
        population: pop,
        generations: gens,
        seed,
        ..Default::default()
    };
    Nsga2::new(HeavyZdt1 { weight }, cfg)
        .with_workers(workers)
        .run()
        .population
        .len()
}

/// Like [`run_nsga2`] but with an explicit recorder attached, for the
/// tracing-overhead comparison. A *cheap* evaluation function keeps the
/// recorder's branch cost from drowning in evaluation time.
fn run_nsga2_with_recorder(pop: usize, gens: usize, seed: u64, recorder: &Recorder) -> usize {
    let cfg = Nsga2Config {
        population: pop,
        generations: gens,
        seed,
        ..Default::default()
    };
    Nsga2::new(HeavyZdt1 { weight: 0 }, cfg)
        .with_recorder(recorder.clone())
        .run()
        .population
        .len()
}

/// One replanner-shaped solve of the paper's worked share example —
/// the §3.2 search `Replanner` re-runs every round. An empty seed set
/// is a cold start; a non-empty one warm-starts the population the way
/// the replanner seeds from its epsilon archive.
fn run_replan(
    problem: &ShareProblem,
    pop: usize,
    gens: usize,
    seed: u64,
    seeds: &[Vec<f64>],
) -> usize {
    let cfg = Nsga2Config {
        population: pop,
        generations: gens,
        seed,
        ..Default::default()
    };
    ShareAnalyzer::new(problem.clone())
        .with_config(cfg)
        .with_workers(1)
        .solve_with_seeds(seeds)
        .expect("worked example solves")
        .plans
        .len()
}

/// One event-driven elasticity episode over a quiet-heavy workload —
/// a short busy ramp, then silence until the end. With `fast_forward`
/// off the engine chain walks every simulated second (the tick-compat
/// cadence); with it on, quiet windows are covered by a single
/// catch-up tick per inter-event gap, so the episode costs only its
/// scheduled control/housekeeping events.
fn run_episode(minutes: u64, quiet_at_secs: u64, fast_forward: bool, seed: u64) -> usize {
    // A light busy phase (the skip is what's being measured, and record
    // generation costs both modes identically) and a 2-minute grid:
    // fast-forward's jumps are bounded by control events, and it only
    // engages after one monitoring period of inactivity, so shorter
    // periods both cost grid events and engage the skip sooner.
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::step(10.0, 0.0, SimTime::from_secs(quiet_at_secs)))
        .monitoring_period(SimDuration::from_mins(2))
        .fast_forward(fast_forward)
        .seed(seed)
        .build()
        .expect("bench episode builds");
    let report = manager.run_for_mins(minutes);
    report.events_executed as usize
}

/// Re-measure a pair whose observed direction contradicts the promise
/// in its comparison name (`baseline ≥ candidate`). A first pass can
/// land under 1× purely through scheduler noise — the v1 committed
/// baseline shipped `recorder_disabled_overhead` at 0.865× that way.
/// Each attempt triples the sample count (two attempts max), so a
/// genuine regression survives re-measurement and is published
/// honestly rather than papered over.
fn settle_direction(
    name: &str,
    samples: usize,
    base: &mut Measurement,
    cand: &mut Measurement,
    base_f: &dyn Fn(usize) -> Measurement,
    cand_f: &dyn Fn(usize) -> Measurement,
) {
    for attempt in 1..=2u32 {
        let ratio = base.median_ns / cand.median_ns;
        if ratio >= 1.0 {
            return;
        }
        let n = samples * 3usize.pow(attempt);
        println!("  {name}: {ratio:.2}x contradicts the name; re-measuring at {n} samples");
        *base = base_f(n);
        *cand = cand_f(n);
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| {
            if smoke {
                "target/BENCH_nsga2.json".to_owned()
            } else {
                "BENCH_nsga2.json".to_owned()
            }
        });
    let seed = seed_arg(2017);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = Executor::from_env().workers();

    // Smoke mode shrinks everything so CI can validate the schema in
    // seconds; the committed baseline uses the full sizes.
    let (pop, gens, weight, sort_n, filter_n, samples) = if smoke {
        (32, 3, 50, 128, 128, 3)
    } else {
        (200, 10, 2_000, 512, 512, 15)
    };
    // Replanner-shaped solves: cold runs the full generation budget,
    // warm runs the refinement budget — the same 60/12 split
    // `ReplanConfig` defaults to.
    let (replan_pop, cold_gens, warm_gens) = if smoke { (24, 16, 4) } else { (60, 60, 12) };
    // Event-core episodes: mostly-quiet so the fast-forward row has
    // windows to skip. The full size is the acceptance scenario — a
    // 1-hour episode that goes quiet after its first half-minute.
    let (episode_mins, quiet_at_secs) = if smoke { (6, 30) } else { (60, 30) };

    println!("B1 — NSGA-II performance baseline (cores {cores}, workers {workers}, seed {seed})");
    println!("  sizes: pop {pop} x gens {gens}, sort n={sort_n}, filter n={filter_n}");
    println!("  replan: pop {replan_pop}, cold gens {cold_gens}, warm gens {warm_gens}");
    println!("  episode: {episode_mins} min, quiet after {quiet_at_secs} s");

    // 1. Full-run evaluation fan-out: 1 worker vs. all workers.
    let eval_serial_f = |n: usize| measure(n, || run_nsga2(pop, gens, weight, seed, 1));
    let eval_parallel_f = |n: usize| measure(n, || run_nsga2(pop, gens, weight, seed, workers));
    let mut eval_serial = eval_serial_f(samples);
    let mut eval_parallel = eval_parallel_f(samples);
    if workers > 1 {
        // On a single-worker host the parallel path degenerates to the
        // serial one and its "speedup" has no promised direction.
        settle_direction(
            "parallel_eval_speedup",
            samples,
            &mut eval_serial,
            &mut eval_parallel,
            &eval_serial_f,
            &eval_parallel_f,
        );
    }

    // 2. Tracing overhead: a disabled recorder (the production default)
    // vs. an enabled flight recorder capturing every generation. Cheap
    // evaluations make the recorder's cost visible rather than letting
    // evaluation time mask it.
    let disabled = Recorder::disabled();
    let enabled = Recorder::with_capacity(4_096);
    let rec_disabled_f =
        |n: usize| measure(n, || run_nsga2_with_recorder(pop, gens, seed, &disabled));
    let rec_enabled_f =
        |n: usize| measure(n, || run_nsga2_with_recorder(pop, gens, seed, &enabled));
    let mut rec_disabled = rec_disabled_f(samples);
    let mut rec_enabled = rec_enabled_f(samples);
    settle_direction(
        "recorder_disabled_overhead",
        samples,
        &mut rec_enabled,
        &mut rec_disabled,
        &rec_enabled_f,
        &rec_disabled_f,
    );

    // 3. Replanning: cold start vs. warm start. The warm seed set is
    // produced exactly the way `Replanner` produces it — one cold
    // solve's front folded through an epsilon archive — so the row
    // times the steady-state cost of a consecutive replan.
    let problem = ShareProblem::worked_example(1.0);
    let warm_seeds: Vec<Vec<f64>> = {
        let front = ShareAnalyzer::new(problem.clone())
            .with_config(Nsga2Config {
                population: replan_pop,
                generations: cold_gens,
                seed,
                ..Default::default()
            })
            .with_workers(1)
            .solve_with_seeds(&[])
            .expect("worked example solves")
            .front;
        let mut archive = EpsilonArchive::new(0.5, 64);
        for (genes, objectives) in &front {
            archive.offer(genes, objectives);
        }
        archive.entries().iter().map(|e| e.genes.clone()).collect()
    };
    println!("  replan warm seed set: {} genomes", warm_seeds.len());
    let replan_cold_f =
        |n: usize| measure(n, || run_replan(&problem, replan_pop, cold_gens, seed, &[]));
    let replan_warm_f = |n: usize| {
        measure(n, || {
            run_replan(&problem, replan_pop, warm_gens, seed, &warm_seeds)
        })
    };
    let mut replan_cold = replan_cold_f(samples);
    let mut replan_warm = replan_warm_f(samples);
    settle_direction(
        "replan_warm_vs_cold",
        samples,
        &mut replan_cold,
        &mut replan_warm,
        &replan_cold_f,
        &replan_warm_f,
    );

    // 4. Dominance sort: serial triangular pass vs. row-parallel.
    let mut sorted_pop: Vec<Individual> = {
        let problem = HeavyZdt1 { weight: 0 };
        point_cloud(sort_n, 30, 0x5eed_0001)
            .into_iter()
            .map(|mut g| {
                for x in &mut g {
                    *x /= 10.0;
                }
                Individual::evaluated(&problem, g)
            })
            .collect()
    };
    let sort_serial = measure(samples, || {
        fast_non_dominated_sort_with(&mut sorted_pop, &Executor::serial()).len()
    });
    let executor = Executor::new(workers);
    let sort_parallel = measure(samples, || {
        fast_non_dominated_sort_with(&mut sorted_pop, &executor).len()
    });

    // 5. Non-dominated filter: sweep vs. the naive scan it replaced.
    // `hypervolume` runs the filter internally; benchmark it through a
    // small 3-D hypervolume call vs. naive-filter + the same call.
    let cloud = point_cloud(filter_n, 3, 0x5eed_0002);
    let reference = vec![11.0, 11.0, 11.0];
    let filter_sweep_f = |n: usize| measure(n, || flower_nsga2::hypervolume(&cloud, &reference));
    let filter_naive_f = |n: usize| {
        measure(n, || {
            flower_nsga2::hypervolume(&naive_filter(&cloud), &reference)
        })
    };
    let mut filter_sweep = filter_sweep_f(samples);
    let mut filter_naive = filter_naive_f(samples);
    settle_direction(
        "filter_sweep_speedup",
        samples,
        &mut filter_naive,
        &mut filter_sweep,
        &filter_naive_f,
        &filter_sweep_f,
    );

    // 6. The event-driven episode core: tick-compat cadence (every
    // engine second simulated) vs. fast-forward (quiet windows jumped
    // to the next scheduled event). Both rows run the identical
    // quiet-heavy episode; only the fast-forward switch differs.
    let episode_compat_f =
        |n: usize| measure(n, || run_episode(episode_mins, quiet_at_secs, false, seed));
    let episode_ff_f =
        |n: usize| measure(n, || run_episode(episode_mins, quiet_at_secs, true, seed));
    let mut episode_compat = episode_compat_f(samples);
    let mut episode_ff = episode_ff_f(samples);
    settle_direction(
        "event_core_fast_forward_speedup",
        samples,
        &mut episode_compat,
        &mut episode_ff,
        &episode_compat_f,
        &episode_ff_f,
    );

    let results = [
        NamedResult {
            name: "nsga2_run_eval_heavy_serial",
            m: eval_serial,
        },
        NamedResult {
            name: "nsga2_run_eval_heavy_parallel",
            m: eval_parallel,
        },
        NamedResult {
            name: "nsga2_run_recorder_disabled",
            m: rec_disabled,
        },
        NamedResult {
            name: "nsga2_run_recorder_enabled",
            m: rec_enabled,
        },
        NamedResult {
            name: "replan_cold",
            m: replan_cold,
        },
        NamedResult {
            name: "replan_warm",
            m: replan_warm,
        },
        NamedResult {
            name: "sort_serial",
            m: sort_serial,
        },
        NamedResult {
            name: "sort_parallel",
            m: sort_parallel,
        },
        NamedResult {
            name: "hypervolume_sweep_filter",
            m: filter_sweep,
        },
        NamedResult {
            name: "hypervolume_naive_filter",
            m: filter_naive,
        },
        NamedResult {
            name: "event_core_tick_compat",
            m: episode_compat,
        },
        NamedResult {
            name: "event_core_fast_forward",
            m: episode_ff,
        },
    ];

    let comparisons = [
        (
            "parallel_eval_speedup",
            "nsga2_run_eval_heavy_serial",
            "nsga2_run_eval_heavy_parallel",
            eval_serial.median_ns / eval_parallel.median_ns,
        ),
        (
            "recorder_disabled_overhead",
            "nsga2_run_recorder_enabled",
            "nsga2_run_recorder_disabled",
            rec_enabled.median_ns / rec_disabled.median_ns,
        ),
        (
            "replan_warm_vs_cold",
            "replan_cold",
            "replan_warm",
            replan_cold.median_ns / replan_warm.median_ns,
        ),
        (
            "parallel_sort_speedup",
            "sort_serial",
            "sort_parallel",
            sort_serial.median_ns / sort_parallel.median_ns,
        ),
        (
            "filter_sweep_speedup",
            "hypervolume_naive_filter",
            "hypervolume_sweep_filter",
            filter_naive.median_ns / filter_sweep.median_ns,
        ),
        (
            "event_core_fast_forward_speedup",
            "event_core_tick_compat",
            "event_core_fast_forward",
            episode_compat.median_ns / episode_ff.median_ns,
        ),
    ];

    for r in &results {
        println!(
            "  {:<32} median {:>14.0} ns  mean {:>14.0} ns  ({} samples x {} iters)",
            r.name, r.m.median_ns, r.m.mean_ns, r.m.samples, r.m.iters_per_sample
        );
    }
    for (name, base, cand, speedup) in &comparisons {
        println!("  {name:<32} {speedup:>6.2}x  ({base} / {cand})");
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"flower-bench/nsga2/v2\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(
        "  \"note\": \"parallel_* speedups reflect this machine's core count; \
         on a single-core host they are ~1x by construction. replan_warm_vs_cold \
         and event_core_fast_forward_speedup are algorithmic (generation budget; \
         events executed), not core-count dependent. \
         Directional comparisons are re-measured (3x samples, twice) before an \
         inverted value is published\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"mean_ns\": {}, \
             \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.name,
            json_f64(r.m.median_ns),
            json_f64(r.m.mean_ns),
            r.m.samples,
            r.m.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"comparisons\": [\n");
    for (i, (name, base, cand, speedup)) in comparisons.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"candidate\": \"{}\", \
             \"speedup\": {}}}{}\n",
            name,
            base,
            cand,
            json_f64(*speedup),
            if i + 1 == comparisons.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write JSON");
    println!("\nwrote {out_path}");
}
