// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **E1 + E2 — Fig. 2 and Eq. 2 of the paper.**
//!
//! Reproduces the paper's Fig. 2: a 550-minute trace of the click-stream
//! flow in which the data arrival rate at the ingestion layer (Kinesis)
//! is strongly correlated with the CPU load at the analytics layer
//! (Storm). The paper reports a Pearson coefficient of 0.95 and the
//! fitted dependency `CPU ≈ 0.0002·WriteCapacity + 4.8` (Eq. 2).
//!
//! Our trace comes from the simulated flow under a diurnal+noise click
//! workload; the *shape* to reproduce is a strong (≥ 0.9) positive
//! correlation and a regression line with a small positive slope and an
//! intercept equal to the cluster's idle CPU.
//!
//! ```text
//! cargo run --release -p flower-bench --bin fig2_dependency [--seed N]
//! ```

use flower_bench::seed_arg;
use flower_core::dashboard::{downsample, sparkline};
use flower_core::dependency::DependencyAnalyzer;
use flower_core::flow::clickstream_flow;
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::{DiurnalRate, NoisyRate};

fn main() {
    let seed = seed_arg(2017);
    // The paper's trace spans 550 minutes with visible load cycles.
    const MINUTES: u64 = 550;

    // Static over-provisioned deployment: Fig. 2 is an *observation*
    // trace, not a control episode — capacity must not clip the signal.
    let flow = clickstream_flow();
    let mut config = flow.engine_config();
    config.kinesis.initial_shards = 8;
    config.storm.initial_vms = 6;
    config.storm.cpu_noise_std = 5.0; // correlated sensor disturbance → r ≈ 0.95
    config.storm.noise_seed = seed ^ 0xC10;
    config.dynamo.initial_wcu = 400.0;
    let mut engine = flower_cloud::CloudEngine::new(config);

    let mut process = NoisyRate::new(
        Box::new(DiurnalRate::new(
            3_500.0,
            2_800.0,
            SimDuration::from_mins(180),
            SimDuration::ZERO,
        )),
        0.08,
        SimRng::seed(seed).fork(2),
    );
    let mut generator = flower_workload::ClickStreamGenerator::new(
        flower_workload::ClickStreamConfig::default(),
        SimRng::seed(seed).fork(1),
    );

    println!("simulating {MINUTES} minutes of the click-stream flow (seed {seed})...");
    for s in 0..MINUTES * 60 {
        let now = SimTime::from_secs(s);
        let records = generator.tick(&mut process, now, 1.0);
        engine.tick(&records, now, SimDuration::from_secs(1));
    }

    // --- Fig. 2 panels: per-minute input records and analytics CPU.
    use flower_cloud::engine::metric_names::*;
    use flower_cloud::{MetricId, Statistic};
    let records_id = MetricId::new(NS_KINESIS, INCOMING_RECORDS, "clicks");
    let cpu_id = MetricId::new(NS_STORM, CPU_UTILIZATION, "counter");
    let per_min_records: Vec<f64> = engine
        .metrics()
        .get_statistics(
            &records_id,
            Statistic::Sum,
            SimDuration::from_mins(1),
            SimTime::ZERO,
            SimTime::from_mins(MINUTES),
        )
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let per_min_cpu: Vec<f64> = engine
        .metrics()
        .get_statistics(
            &cpu_id,
            Statistic::Average,
            SimDuration::from_mins(1),
            SimTime::ZERO,
            SimTime::from_mins(MINUTES),
        )
        .into_iter()
        .map(|(_, v)| v)
        .collect();

    println!("\nFig. 2 (top): ingestion layer — input records per minute");
    println!("  {}", sparkline(&downsample(&per_min_records, 110)));
    println!("Fig. 2 (bottom): analytics layer — CPU (%)");
    println!("  {}", sparkline(&downsample(&per_min_cpu, 110)));

    // --- The quantitative reproduction: correlation + Eq. 2 regression.
    let analyzer = DependencyAnalyzer::for_clickstream("clicks", "counter", "aggregates");
    let deps = analyzer
        .dependencies(engine.metrics(), SimTime::ZERO, SimTime::from_mins(MINUTES))
        .expect("analysis succeeds");

    println!("\nlearned cross-layer dependencies (|r| >= 0.7):");
    for d in &deps {
        println!("  {}", d.equation());
    }

    let fig2 = deps
        .iter()
        .find(|d| d.source.id.metric == INCOMING_RECORDS && d.target.id.metric == CPU_UTILIZATION)
        .expect("the Fig. 2 pair must be dependent");
    println!("\n== paper vs reproduction ==");
    println!(
        "  correlation (paper: 0.95)     : {:.3}",
        fig2.correlation()
    );
    println!(
        "  regression (paper Eq. 2: CPU = 0.0002*WC + 4.8): CPU = {:.6}*records_per_sec + {:.2}",
        fig2.fit.slope * 60.0, // per-minute sum → per-second rate
        fig2.fit.intercept
    );
    println!(
        "  shape check: strong positive correlation {}; positive intercept (idle CPU) {}",
        if fig2.correlation() >= 0.9 {
            "PASS"
        } else {
            "FAIL"
        },
        if fig2.fit.intercept > 0.0 {
            "PASS"
        } else {
            "FAIL"
        },
    );
}
