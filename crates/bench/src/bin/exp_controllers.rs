// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **E4 — the §3.3 controller comparison.**
//!
//! The paper claims its adaptive gain-memory controller "outperforms the
//! state of the art fixed-gain [12] and quasi-adaptive [14]
//! counterparts" (experiments detailed in the companion journal paper
//! [9]). This experiment reproduces the comparison's *shape* on three
//! workloads — step, flash crowd, and recurring bursts (MMPP) — scoring
//! each controller on throttled records (elasticity speed), SLO
//! violation rate, cost, and actuator oscillation.
//!
//! Expected shape: the adaptive controller throttles the fewest records
//! (reacts fastest), the rule-based autoscaler the most; the adaptive
//! premium is a modestly higher cost from transient over-provisioning.
//!
//! ```text
//! cargo run --release -p flower-bench --bin exp_controllers [--seed N]
//! ```

use flower_bench::{print_summary_header, print_summary_row, run_episode, seed_arg, summarize};
use flower_core::config::ControllerSpec;
use flower_core::prelude::*;
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::MmppRate;

fn workload(kind: &str, seed: u64) -> Workload {
    match kind {
        "step" => Workload::step(600.0, 3_600.0, SimTime::from_mins(10)),
        "flash-crowd" => Workload::flash_crowd(600.0, 5_000.0, SimTime::from_mins(10)),
        "recurring-bursts" => Workload::custom(Box::new(MmppRate::new(
            500.0,
            4_000.0,
            SimDuration::from_mins(8),
            SimDuration::from_mins(4),
            SimRng::seed(seed ^ 0xABCD),
        ))),
        _ => unreachable!(),
    }
}

fn main() {
    let seed = seed_arg(5);
    const MINUTES: u64 = 60;
    let specs = [
        ControllerSpec::adaptive(60.0),
        ControllerSpec::fixed_gain(60.0),
        ControllerSpec::quasi_adaptive(60.0),
        ControllerSpec::rule_based(60.0),
    ];

    let mut adaptive_thr = u64::MAX;
    let mut best_other_thr = u64::MAX;

    for kind in ["step", "flash-crowd", "recurring-bursts"] {
        println!("\n=== workload: {kind} ({MINUTES} min, seed {seed}) ===");
        print_summary_header();
        for spec in &specs {
            let report = run_episode(spec.clone(), workload(kind, seed), MINUTES, seed);
            let summary = summarize(spec.name(), &report);
            print_summary_row(&summary);
            if kind == "recurring-bursts" {
                if spec.name() == "adaptive" {
                    adaptive_thr = summary.throttled_ingest;
                } else {
                    best_other_thr = best_other_thr.min(summary.throttled_ingest);
                }
            }
        }
    }

    println!("\n== shape check (recurring bursts, the gain-memory habitat) ==");
    println!(
        "  adaptive throttles fewer records than every baseline: {} ({} vs best baseline {})",
        if adaptive_thr < best_other_thr {
            "PASS"
        } else {
            "FAIL"
        },
        adaptive_thr,
        best_other_thr
    );
}
