// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **A1 — ablation: the gain-memory feature and the γ sweep.**
//!
//! §3.3 distinguishes Flower's controller by "updating the gain
//! parameters in multi-stages and keeping the history of the previously
//! computed control gains for rapid elasticity". This ablation isolates
//! that feature: the same adaptive controller with and without gain
//! memory, across the γ (gain adaptation rate) range, on a
//! recurring-burst workload where regimes repeat.
//!
//! Expected shape: memory pays when γ is small (the gain would otherwise
//! re-ramp slowly on every burst) and washes out as γ grows (one step
//! already saturates the gain); throttled records quantify the benefit.
//!
//! ```text
//! cargo run --release -p flower-bench --bin abl_gain_memory [--seed N]
//! ```

use flower_bench::{run_episode, seed_arg};
use flower_core::config::ControllerSpec;
use flower_core::prelude::*;
use flower_sim::{SimDuration, SimRng};
use flower_workload::MmppRate;

fn bursts(seed: u64) -> Workload {
    Workload::custom(Box::new(MmppRate::new(
        500.0,
        4_000.0,
        SimDuration::from_mins(8),
        SimDuration::from_mins(4),
        SimRng::seed(seed ^ 0x5EED),
    )))
}

fn main() {
    let base_seed = seed_arg(5);
    const MINUTES: u64 = 90;
    let seeds = [base_seed, base_seed + 1, base_seed + 2];

    println!(
        "A1 — gain memory ablation ({MINUTES} min recurring bursts, {} seeds)",
        seeds.len()
    );
    println!(
        "{:>9} {:>8} {:>14} {:>10} {:>10}",
        "gamma", "memory", "thr.ingest", "cost $", "actions"
    );

    let mut memory_wins_small_gamma = false;
    for gamma in [0.00002, 0.00005, 0.0001, 0.0005] {
        let mut rows = Vec::new();
        for memory in [true, false] {
            let spec = ControllerSpec::Adaptive {
                setpoint: 60.0,
                gamma,
                l_min: 0.002,
                l_max: 0.05,
                gain_memory: memory,
            };
            let mut thr = 0u64;
            let mut cost = 0.0;
            let mut actions = 0u64;
            for &seed in &seeds {
                let report = run_episode(spec.clone(), bursts(seed), MINUTES, seed);
                thr += report.throttled_ingest;
                cost += report.total_cost_dollars;
                actions += report.total_actions();
            }
            println!(
                "{:>9} {:>8} {:>14} {:>10.3} {:>10}",
                gamma,
                if memory { "on" } else { "off" },
                thr,
                cost,
                actions
            );
            rows.push(thr);
        }
        if gamma <= 0.00005 && rows[0] < rows[1] {
            memory_wins_small_gamma = true;
        }
    }

    println!("\n== shape check ==");
    println!(
        "  memory reduces throttling at small gamma: {}",
        if memory_wins_small_gamma {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
