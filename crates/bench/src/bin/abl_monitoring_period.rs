// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **A2 — ablation: the monitoring period.**
//!
//! The demo lets attendees "adjust parameters of the controllers, such
//! as elasticity speed, monitoring period, or even their internal
//! settings and compare their impacts on SLOs" (§4). This ablation
//! sweeps the sensor window / control interval on a flash-crowd
//! workload.
//!
//! Expected shape: very short periods react fastest but act on noisy
//! windows (more actions); very long periods are cheap on actions but
//! throttle heavily during the crowd; an intermediate period balances.
//!
//! ```text
//! cargo run --release -p flower-bench --bin abl_monitoring_period [--seed N]
//! ```

use flower_bench::seed_arg;
use flower_core::flow::clickstream_flow;
use flower_core::prelude::*;
use flower_sim::{SimDuration, SimTime};

fn main() {
    let seed = seed_arg(5);
    const MINUTES: u64 = 45;

    println!("A2 — monitoring period sweep (flash crowd at t=10 min, {MINUTES} min)");
    println!(
        "{:>10} {:>14} {:>10} {:>10} {:>12}",
        "period", "thr.ingest", "cost $", "actions", "rejected"
    );

    let mut results = Vec::new();
    for secs in [10u64, 15, 30, 60, 120, 300] {
        let mut manager = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::flash_crowd(
                600.0,
                5_000.0,
                SimTime::from_mins(10),
            ))
            .monitoring_period(SimDuration::from_secs(secs))
            .seed(seed)
            .build()
            .expect("workload attached above");
        let report = manager.run_for_mins(MINUTES);
        let rejected: u64 = report.rejected_actuations.iter().sum();
        println!(
            "{:>9}s {:>14} {:>10.4} {:>10} {:>12}",
            secs,
            report.throttled_ingest,
            report.total_cost_dollars,
            report.total_actions(),
            rejected
        );
        results.push((secs, report.throttled_ingest, report.total_actions()));
    }

    let thr_short = results.first().expect("non-empty").1;
    let thr_long = results.last().expect("non-empty").1;
    let actions_short = results.first().expect("non-empty").2;
    let actions_long = results.last().expect("non-empty").2;
    println!("\n== shape checks ==");
    println!(
        "  short periods throttle less than long ones: {} ({thr_short} vs {thr_long})",
        if thr_short < thr_long { "PASS" } else { "FAIL" }
    );
    println!(
        "  short periods act more often: {} ({actions_short} vs {actions_long})",
        if actions_short > actions_long {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
