// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **A3 — ablation: NSGA-II against naive plan-space search.**
//!
//! §3.2 chose NSGA-II "to efficiently search the provisioning plan
//! space". This ablation quantifies that choice on the worked-example
//! problem: NSGA-II vs pure random search vs a uniform grid, at equal
//! evaluation budgets, scored by the 3-D hypervolume of the feasible
//! front (reference point = the origin of "no resources", objectives
//! negated-for-minimization).
//!
//! Expected shape: NSGA-II dominates both baselines at every budget, and
//! the gap widens as the budget shrinks.
//!
//! ```text
//! cargo run --release -p flower-bench --bin abl_nsga2 [--seed N]
//! ```

use flower_bench::seed_arg;
use flower_core::share::ShareProblem;
use flower_nsga2::{hypervolume, Executor, Individual, Nsga2, Nsga2Config, Problem};
use flower_sim::SimRng;

/// Collect the feasible non-dominated objective vectors of a candidate
/// set (objectives are negated shares, i.e. minimized).
fn feasible_front(problem: &ShareProblem, genes: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let individuals: Vec<Individual> = genes
        .iter()
        .map(|g| Individual::evaluated(problem, g.clone()))
        .collect();
    let feasible: Vec<&Individual> = individuals.iter().filter(|i| i.is_feasible()).collect();
    let mut front = Vec::new();
    'outer: for (i, a) in feasible.iter().enumerate() {
        for (j, b) in feasible.iter().enumerate() {
            if i != j && b.dominates_objectives(a) {
                continue 'outer;
            }
        }
        front.push(a.objectives.clone());
    }
    front
}

fn random_search(problem: &ShareProblem, evals: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SimRng::seed(seed);
    (0..evals)
        .map(|_| {
            (0..3)
                .map(|i| {
                    let (lo, hi) = problem.bounds(i);
                    rng.uniform(lo, hi)
                })
                .collect()
        })
        .collect()
}

fn grid_search(problem: &ShareProblem, evals: usize) -> Vec<Vec<f64>> {
    // A cube grid with ~evals points.
    let per_dim = (evals as f64).powf(1.0 / 3.0).floor().max(2.0) as usize;
    let mut out = Vec::new();
    for i in 0..per_dim {
        for j in 0..per_dim {
            for k in 0..per_dim {
                let coord = |idx: usize, step: usize| {
                    let (lo, hi) = problem.bounds(idx);
                    lo + (hi - lo) * step as f64 / (per_dim - 1) as f64
                };
                out.push(vec![coord(0, i), coord(1, j), coord(2, k)]);
            }
        }
    }
    out
}

fn main() {
    let seed = seed_arg(2017);
    let problem = ShareProblem::worked_example(0.75);
    // Reference point for the (negated) maximization: 0 shares.
    let reference = [0.0, 0.0, 0.0];

    println!("A3 — NSGA-II vs naive search on the Fig. 4 problem");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "evals", "nsga2 HV", "random HV", "grid HV"
    );

    // The three budgets are independent — fan them out across the
    // executor's workers. Each run fixes its own seed and RNG stream, so
    // the rows (collected in submission order) are identical to the old
    // sequential loop's output.
    let budgets = [(40usize, 24usize), (60, 49), (100, 99)];
    let executor = Executor::from_env();
    let rows_out = executor.par_map(&budgets, |_, &(pop, gens)| {
        let evals = pop * (gens + 1);
        let result = Nsga2::new(
            problem.clone(),
            Nsga2Config {
                population: pop,
                generations: gens,
                seed,
                ..Default::default()
            },
        )
        .run();
        let nsga_front: Vec<Vec<f64>> = result
            .pareto_front()
            .iter()
            .filter(|i| i.is_feasible())
            .map(|i| i.objectives.clone())
            .collect();
        let hv_nsga = hypervolume(&nsga_front, &reference);

        let hv_random = hypervolume(
            &feasible_front(&problem, &random_search(&problem, evals, seed)),
            &reference,
        );
        let hv_grid = hypervolume(
            &feasible_front(&problem, &grid_search(&problem, evals)),
            &reference,
        );
        (evals, hv_nsga, hv_random, hv_grid)
    });

    let mut nsga_wins = 0;
    let mut rows = 0;
    for (evals, hv_nsga, hv_random, hv_grid) in rows_out {
        println!("{evals:>8} {hv_nsga:>14.1} {hv_random:>14.1} {hv_grid:>14.1}");
        rows += 1;
        if hv_nsga > hv_random && hv_nsga > hv_grid {
            nsga_wins += 1;
        }
    }

    println!("\n== shape check ==");
    println!(
        "  NSGA-II dominates both baselines at every budget: {} ({nsga_wins}/{rows})",
        if nsga_wins == rows { "PASS" } else { "FAIL" }
    );
}
