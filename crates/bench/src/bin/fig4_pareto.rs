// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! **E3 — Fig. 4 of the paper: Pareto-optimal resource shares.**
//!
//! The paper's worked example (§3.2): maximize `(r_I, r_A, r_S)` subject
//! to a budget and the assumptive dependency constraints
//! `5·r_A ≥ r_I`, `2·r_A ≤ r_I`, `2·r_I ≤ r_S`, solved with NSGA-II
//! (pop 100, gen 250). The demo reports **six Pareto optimal solutions**
//! for its instance; the shape to reproduce is a small handful of
//! distinct, feasible, budget-saturating plans trading the three shares
//! against each other.
//!
//! ```text
//! cargo run --release -p flower-bench --bin fig4_pareto [--seed N]
//! ```

use flower_bench::seed_arg;
use flower_core::prelude::*;
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;

fn main() {
    let seed = seed_arg(2017);
    // A budget chosen so the worked example's integer front lands in the
    // single digits, like the paper's six.
    let budget = 0.75;
    let problem = ShareProblem::worked_example(budget);

    println!("Fig. 4 reproduction — resource share analysis (seed {seed})");
    println!("budget ${budget:.2}/h; constraints:");
    for c in &problem.constraints {
        println!("  {}", c.label);
    }

    let analyzer = ShareAnalyzer::new(problem).with_config(Nsga2Config {
        population: 100,
        generations: 250,
        seed,
        ..Default::default()
    });
    let plans = analyzer.solve().expect("feasible plans exist");
    println!(
        "\nNSGA-II found {} distinct feasible Pareto plans at integer resolution.",
        plans.len()
    );

    // Collapse to the representative list the demo's Fig. 4 shows: the
    // analytics share (VMs — the coarsest, most expensive resource)
    // indexes the trade-off; keep the maximum-share plan per VM count.
    let mut plans_by_vms: Vec<flower_core::share::ResourceShares> = Vec::new();
    for p in &plans {
        match plans_by_vms.iter_mut().find(|q| q.vms() == p.vms()) {
            Some(existing) => {
                if p.hourly_cost > existing.hourly_cost {
                    *existing = p.clone();
                }
            }
            None => plans_by_vms.push(p.clone()),
        }
    }
    plans_by_vms.sort_by(|a, b| a.vms().partial_cmp(&b.vms()).expect("finite"));
    let plans = plans_by_vms;

    println!("representative Pareto-optimal provisioning plans (paper: 6):");
    println!(
        "{:>4} {:>14} {:>10} {:>12} {:>10}",
        "#", "Kinesis shards", "Storm VMs", "Dynamo WCU", "$/hour"
    );
    for (i, p) in plans.iter().enumerate() {
        println!(
            "{:>4} {:>14.0} {:>10.0} {:>12.0} {:>10.4}",
            i + 1,
            p.shards(),
            p.vms(),
            p.wcu(),
            p.hourly_cost
        );
    }

    // Shape checks.
    let distinct_ok = plans.len() >= 3 && plans.len() <= 12;
    let saturating = plans
        .iter()
        .filter(|p| p.hourly_cost > 0.9 * budget)
        .count();
    let tradeoff = {
        // At least two plans must differ in which layer they favour.
        let max_vms = plans.iter().map(ResourceShares::vms).fold(0.0, f64::max);
        let max_shards = plans.iter().map(ResourceShares::shards).fold(0.0, f64::max);
        let argmax_vms = plans.iter().position(|p| p.vms() == max_vms);
        let argmax_shards = plans.iter().position(|p| p.shards() == max_shards);
        argmax_vms != argmax_shards || plans.len() == 1
    };
    println!("\n== shape checks ==");
    println!(
        "  handful of distinct plans (paper: 6, ours: {}): {}",
        plans.len(),
        if distinct_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "  plans saturate the budget ({} of {} above 90%): {}",
        saturating,
        plans.len(),
        if saturating >= 1 { "PASS" } else { "FAIL" }
    );
    println!(
        "  plans trade layers against each other: {}",
        if tradeoff { "PASS" } else { "FAIL" }
    );
}
