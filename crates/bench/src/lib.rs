// Operational entry point: exempt from the library panic-freedom floor
// (mirrors the Exempt crate profile of `cargo xtask lint`).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! # flower-bench
//!
//! The experiment harness regenerating every figure of the Flower paper
//! plus the ablations DESIGN.md calls out. Each experiment is a binary:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_dependency` | Fig. 2 + Eq. 2 — cross-layer dependency & regression |
//! | `fig4_pareto` | Fig. 4 — Pareto-optimal resource shares (NSGA-II) |
//! | `exp_controllers` | §3.3 — adaptive vs fixed-gain vs quasi-adaptive vs rule-based |
//! | `exp_holistic` | §1 — holistic vs analytics-only vs static-peak cost |
//! | `abl_gain_memory` | A1 — gain memory on/off, γ sweep |
//! | `abl_monitoring_period` | A2 — monitoring period sweep |
//! | `abl_nsga2` | A3 — NSGA-II vs random/grid search (hypervolume) |
//! | `abl_skew` | A4 — hot-key skew: stream-average vs hottest-shard sensor |
//!
//! Microbenchmarks live in `benches/`, driven by the in-repo
//! Criterion-compatible [`harness`]. All binaries accept an optional
//! `--seed N` argument and print CSV-ish tables to stdout.

#![warn(clippy::all)]

pub mod harness;

use flower_core::config::ControllerSpec;
use flower_core::flow::{clickstream_flow, Layer};
use flower_core::prelude::*;

/// Parse `--seed N` from argv, defaulting to the experiment's fixed seed.
pub fn seed_arg(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Run one elasticity episode of the reference click-stream flow with the
/// same controller spec on every layer.
pub fn run_episode(
    spec: ControllerSpec,
    workload: Workload,
    minutes: u64,
    seed: u64,
) -> EpisodeReport {
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(workload)
        .all_controllers(spec)
        .seed(seed)
        .build()
        .expect("workload attached above");
    manager.run_for_mins(minutes)
}

/// Summarize an episode into the columns the §3.3 comparison reports.
pub struct EpisodeSummary {
    /// Controller name.
    pub controller: String,
    /// Whether the default click-stream SLO held.
    pub slo_met: bool,
    /// Records throttled at ingestion (elasticity-speed proxy).
    pub throttled_ingest: u64,
    /// Loss rate at ingestion.
    pub loss_rate: f64,
    /// Dollar cost of the episode.
    pub cost: f64,
    /// Scaling actions taken.
    pub actions: u64,
    /// Analytics-layer SLO violation rate (CPU outside 60 ± 15).
    pub violation_rate: f64,
    /// Analytics-layer integral absolute error.
    pub iae: f64,
    /// Analytics-layer oscillation count.
    pub oscillations: usize,
}

/// Build the summary for a finished episode.
pub fn summarize(controller: &str, report: &EpisodeReport) -> EpisodeSummary {
    let metrics = report.response_metrics(Layer::ANALYTICS, 60.0, 15.0);
    let slo_met = flower_core::slo::SloSpec::clickstream_default()
        .evaluate(report)
        .all_met();
    EpisodeSummary {
        controller: controller.to_owned(),
        slo_met,
        throttled_ingest: report.throttled_ingest,
        loss_rate: report.ingest_loss_rate(),
        cost: report.total_cost_dollars,
        actions: report.total_actions(),
        violation_rate: metrics.violation_rate,
        iae: metrics.integral_abs_error,
        oscillations: metrics.oscillations,
    }
}

/// Print the standard comparison table header.
pub fn print_summary_header() {
    println!(
        "{:<16} {:>12} {:>8} {:>10} {:>9} {:>12} {:>10} {:>6} {:>5}",
        "controller", "thr.ingest", "loss%", "cost $", "actions", "violation%", "IAE", "osc", "SLO"
    );
}

/// Print one summary row.
pub fn print_summary_row(s: &EpisodeSummary) {
    println!(
        "{:<16} {:>12} {:>8.2} {:>10.4} {:>9} {:>12.1} {:>10.0} {:>6} {:>5}",
        s.controller,
        s.throttled_ingest,
        s.loss_rate * 100.0,
        s.cost,
        s.actions,
        s.violation_rate * 100.0,
        s.iae,
        s.oscillations,
        if s.slo_met { "met" } else { "MISS" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use flower_sim::SimTime;

    #[test]
    fn seed_arg_defaults() {
        assert_eq!(seed_arg(17), 17);
    }

    #[test]
    fn episode_and_summary_roundtrip() {
        let report = run_episode(
            ControllerSpec::adaptive(60.0),
            Workload::step(400.0, 2_000.0, SimTime::from_mins(2)),
            6,
            1,
        );
        let s = summarize("adaptive", &report);
        assert_eq!(s.controller, "adaptive");
        assert!(s.cost > 0.0);
        assert!(s.loss_rate >= 0.0 && s.loss_rate <= 1.0);
        print_summary_header();
        print_summary_row(&s);
    }
}
