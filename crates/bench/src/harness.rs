//! Minimal, dependency-free micro-benchmark harness with a
//! Criterion-compatible surface.
//!
//! The workspace builds in fully offline environments, so `criterion`
//! is not available; this module provides the subset of its API the
//! `benches/` targets use — `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — backed by a
//! simple warmup + timed-batch loop that reports median and mean
//! nanoseconds per iteration.
//!
//! This is intentionally *not* a statistics engine: it exists so the
//! benches keep compiling, running, and printing usable numbers. The
//! sample count can be lowered for slow benchmarks via
//! [`BenchmarkGroup::sample_size`].

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            samples: 30,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(id, 30, f);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(5);
        self
    }

    /// Run a benchmark named `id` within this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.samples, f);
    }

    /// Run a parameterized benchmark; the input reference is passed to
    /// the closure, Criterion-style.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.samples, |b| {
            f(b, input);
        });
    }

    /// End the group (prints a separator; kept for API compatibility).
    pub fn finish(self) {
        println!();
    }
}

/// A benchmark identifier: `BenchmarkId::new("fn", param)` renders as
/// `fn/param` like Criterion's.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name plus a displayable parameter.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration for each collected sample.
    samples_ns: Vec<f64>,
    /// Iterations per timed batch, sized during warmup.
    batch: u64,
    target_samples: usize,
}

impl Bencher {
    /// Time the routine: warm up, size a batch to ~5 ms, then collect
    /// the configured number of timed samples.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warmup + batch sizing: grow the batch until one batch takes
        // at least ~1 ms, capping total warmup time.
        let warmup_deadline = Instant::now() + Duration::from_millis(300);
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || Instant::now() >= warmup_deadline {
                break;
            }
            batch = batch.saturating_mul(4).max(batch + 1);
        }
        self.batch = batch;
        self.samples_ns.clear();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Summary statistics of one measured routine, in nanoseconds per
/// iteration — the machine-readable counterpart of the printed lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median nanoseconds per iteration across the timed samples.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration across the timed samples.
    pub mean_ns: f64,
    /// Number of timed samples collected.
    pub samples: usize,
    /// Iterations per timed batch (sized during warmup).
    pub iters_per_sample: u64,
}

/// Time `routine` with the same warmup + batch loop the printed
/// benchmarks use and return the statistics instead of printing them.
/// This is what `bench_nsga2` builds `BENCH_*.json` baselines from.
pub fn measure<T>(samples: usize, routine: impl FnMut() -> T) -> Measurement {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        batch: 1,
        target_samples: samples.max(3),
    };
    b.iter(routine);
    b.samples_ns.sort_by(f64::total_cmp);
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    Measurement {
        median_ns: median,
        mean_ns: mean,
        samples: b.samples_ns.len(),
        iters_per_sample: b.batch,
    }
}

fn run_benchmark(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        batch: 1,
        target_samples: samples,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("  {label:<48} (no samples)");
        return;
    }
    b.samples_ns.sort_by(f64::total_cmp);
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    println!(
        "  {label:<48} median {:>12} mean {:>12} ({} samples x {} iters)",
        format_ns(median),
        format_ns(mean),
        b.samples_ns.len(),
        b.batch
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_consistent_statistics() {
        let m = measure(5, || black_box(7u64.wrapping_mul(13)));
        assert_eq!(m.samples, 5);
        assert!(m.iters_per_sample >= 1);
        assert!(m.median_ns.is_finite() && m.median_ns >= 0.0);
        assert!(m.mean_ns.is_finite() && m.mean_ns >= 0.0);
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(0)));
    }
}
