// Test target: unwrap/expect and exact comparison are deliberate here
// (determinism assertions compare exported traces byte-for-byte).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: warm-started replanning stays inside the determinism
//! contract.
//!
//! Warm starts change *how much* work a consecutive replan does, not
//! *what* it computes for a given worker count: the seed pool, the
//! epsilon archive, and the incremental dominance refresh are all pure
//! functions of the previous rounds. Three contracts are pinned here:
//!
//! 1. a warm-started replan sequence exports a byte-identical JSONL
//!    trace whether evaluation fans out over 1 worker or 8, and every
//!    `replan.outcome` event carries the warm/cold marker;
//! 2. the machine-readable (bench-JSON-style) serialization of a
//!    warm-started solve's front is byte-identical across worker
//!    counts;
//! 3. on the worked example, warm and cold rounds are each individually
//!    reproducible, and the warm round genuinely reuses the archive —
//!    it is not a cold start in disguise.

use flower_cloud::{CloudEngine, EngineConfig, MetricsStore};
use flower_core::prelude::*;
use flower_core::replan::{PlanSelection, ReplanConfig, Replanner};
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;
use flower_obs::{kind, parse_trace, JsonValue, Recorder};
use flower_sim::SimRng;
use flower_workload::{ClickStreamConfig, ClickStreamGenerator, DiurnalRate};

/// A metrics store populated by a diurnal click-stream episode — the
/// same shape the replanner unit tests analyze, long enough for three
/// 30-minute analysis windows.
fn populated_store(minutes: u64) -> MetricsStore {
    let mut engine = CloudEngine::new(EngineConfig {
        kinesis: flower_cloud::KinesisConfig {
            initial_shards: 6,
            ..Default::default()
        },
        storm: flower_cloud::StormConfig {
            initial_vms: 4,
            ..Default::default()
        },
        dynamo: flower_cloud::DynamoConfig {
            initial_wcu: 300.0,
            ..Default::default()
        },
        ..Default::default()
    });
    let mut generator = ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(1));
    let mut process = DiurnalRate::new(
        2_500.0,
        2_000.0,
        SimDuration::from_hours(2),
        SimDuration::ZERO,
    );
    for s in 0..minutes * 60 {
        let now = SimTime::from_secs(s);
        let records = generator.tick(&mut process, now, 1.0);
        engine.tick(&records, now, SimDuration::from_secs(1));
    }
    let mut out = MetricsStore::new();
    for id in engine.metrics().list() {
        for (t, v) in engine.metrics().raw(id, SimTime::ZERO, SimTime::MAX) {
            out.put(id.clone(), t, v);
        }
    }
    out
}

fn warm_replanner(workers: usize) -> Replanner {
    Replanner::for_clickstream(
        ReplanConfig {
            cadence: SimDuration::from_mins(30),
            analysis_window: SimDuration::from_mins(30),
            selection: PlanSelection::Balanced,
            nsga2: Nsga2Config {
                population: 40,
                generations: 40,
                seed: 3,
                ..Default::default()
            },
            workers: Some(workers),
            ..Default::default()
        },
        "clickstream",
        "storm-cluster",
        "click-aggregates",
        ShareProblem::worked_example(1.0),
    )
}

/// Run a three-round warm-started replan sequence against `store` and
/// export its structured-event trace.
fn warm_trace(store: &MetricsStore, workers: usize) -> String {
    let recorder = Recorder::with_capacity(16_384);
    let mut replanner = warm_replanner(workers);
    replanner.set_recorder(recorder.clone());
    for mins in [40u64, 70, 100] {
        replanner
            .replan(store, SimTime::from_mins(mins))
            .expect("replan succeeds");
    }
    recorder.to_jsonl()
}

#[test]
fn warm_replan_traces_are_byte_identical_across_worker_counts() {
    let store = populated_store(100);
    let one = warm_trace(&store, 1);
    let eight = warm_trace(&store, 8);
    assert!(
        one == eight,
        "warm-started replan trace diverged between 1 and 8 workers \
         (first differing line: {:?})",
        one.lines()
            .zip(eight.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a} != {b}", i + 1))
    );

    // Every replan outcome carries the warm/cold marker, and the
    // sequence is cold-then-warm: round one has no archive to reuse.
    let trace = parse_trace(&one).unwrap();
    let warms: Vec<bool> = trace
        .events
        .iter()
        .filter(|e| e.kind == kind::REPLAN_OUTCOME)
        .map(|e| match e.fields.get("warm") {
            Some(JsonValue::Bool(b)) => *b,
            other => panic!("replan.outcome without a boolean `warm` field: {other:?}"),
        })
        .collect();
    assert_eq!(
        warms,
        vec![false, true, true],
        "cold round then warm rounds"
    );
}

#[test]
fn warm_solve_front_serializes_identically_across_worker_counts() {
    // The bench-JSON-style serialization of a warm-started solve: every
    // genome and objective of the returned front, printed to full
    // precision. Byte-identity here is a stronger statement than plan
    // equality — it pins the exact floats, not their rounded images.
    let serialize = |workers: usize| -> String {
        let seeds = {
            let cold = ShareAnalyzer::new(ShareProblem::worked_example(1.0))
                .with_config(Nsga2Config {
                    population: 40,
                    generations: 40,
                    seed: 3,
                    ..Default::default()
                })
                .with_workers(workers)
                .solve_with_seeds(&[])
                .expect("cold solve");
            cold.front
                .iter()
                .map(|(genes, _)| genes.clone())
                .collect::<Vec<_>>()
        };
        let warm = ShareAnalyzer::new(ShareProblem::worked_example(1.0))
            .with_config(Nsga2Config {
                population: 40,
                generations: 12,
                seed: 3,
                ..Default::default()
            })
            .with_workers(workers)
            .solve_with_seeds(&seeds)
            .expect("warm solve");
        let mut out = String::from("{\"front\": [\n");
        for (genes, objectives) in &warm.front {
            out.push_str(&format!(
                "  {{\"genes\": {genes:?}, \"objectives\": {objectives:?}}},\n"
            ));
        }
        out.push_str("]}\n");
        out
    };
    let one = serialize(1);
    let eight = serialize(8);
    assert!(!one.is_empty());
    assert_eq!(one, eight, "warm front bytes diverged across worker counts");
}

#[test]
fn warm_rounds_reuse_the_archive_and_stay_reproducible() {
    let store = populated_store(100);

    // Two independent warm sequences agree round for round.
    let run = |workers: usize| -> Vec<(bool, Vec<(String, u32)>)> {
        let mut replanner = warm_replanner(workers);
        [40u64, 70, 100]
            .iter()
            .map(|&mins| {
                let outcome = replanner
                    .replan(&store, SimTime::from_mins(mins))
                    .expect("replan succeeds");
                let plan = outcome
                    .plan
                    .rounded()
                    .into_iter()
                    .map(|(layer, units)| (layer.to_string(), units))
                    .collect();
                (outcome.warm, plan)
            })
            .collect()
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "same seed, same store ⇒ same warm sequence");
    let c = run(8);
    assert_eq!(a, c, "worker count must not leak into outcomes");
    assert!(!a[0].0, "round 1 is cold");
    assert!(a[1].0 && a[2].0, "later rounds warm-start");

    // The warm rounds really run the short generation budget: a
    // disabled-warm-start replanner over the same store and seed does
    // strictly more optimizer work, and its history never warms.
    let mut cold_only = Replanner::for_clickstream(
        ReplanConfig {
            warm_start: false,
            cadence: SimDuration::from_mins(30),
            analysis_window: SimDuration::from_mins(30),
            nsga2: Nsga2Config {
                population: 40,
                generations: 40,
                seed: 3,
                ..Default::default()
            },
            workers: Some(1),
            ..Default::default()
        },
        "clickstream",
        "storm-cluster",
        "click-aggregates",
        ShareProblem::worked_example(1.0),
    );
    for mins in [40u64, 70, 100] {
        let outcome = cold_only
            .replan(&store, SimTime::from_mins(mins))
            .expect("replan succeeds");
        assert!(!outcome.warm);
    }
}
