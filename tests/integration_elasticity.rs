// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: closed-loop elasticity across crates — controllers from
//! flower-control driving the flower-cloud services through flower-core's
//! provisioning manager.

use flower_core::config::ControllerSpec;
use flower_core::flow::{clickstream_flow, Layer};
use flower_core::prelude::*;
use flower_sim::{SimDuration, SimTime};

fn run(spec: ControllerSpec, workload: Workload, minutes: u64, seed: u64) -> EpisodeReport {
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(workload)
        .all_controllers(spec)
        .seed(seed)
        .build()
        .unwrap();
    manager.run_for_mins(minutes)
}

#[test]
fn every_controller_kind_survives_a_step_disturbance() {
    for spec in [
        ControllerSpec::adaptive(60.0),
        ControllerSpec::fixed_gain(60.0),
        ControllerSpec::quasi_adaptive(60.0),
        ControllerSpec::rule_based(60.0),
    ] {
        let name = spec.name();
        let report = run(
            spec,
            Workload::step(500.0, 3_500.0, SimTime::from_mins(10)),
            40,
            1,
        );
        // All controllers must eventually add ingestion capacity.
        let final_shards = report.actuators(Layer::INGESTION).last().unwrap().1;
        assert!(final_shards > 2.0, "{name}: shards stuck at {final_shards}");
        // And the flow must keep accepting most records post-transient.
        assert!(
            report.ingest_loss_rate() < 0.35,
            "{name}: loss rate {}",
            report.ingest_loss_rate()
        );
    }
}

#[test]
fn adaptive_beats_fixed_gain_on_flash_crowd_settling() {
    // The §3.3 claim, end to end: the adaptive controller reacts to a
    // flash crowd faster than the fixed-gain baseline, measured as
    // ingestion-layer throttled records during the episode.
    let workload = || Workload::flash_crowd(600.0, 5_000.0, SimTime::from_mins(10));
    let adaptive = run(ControllerSpec::adaptive(60.0), workload(), 30, 5);
    let fixed = run(ControllerSpec::fixed_gain(60.0), workload(), 30, 5);
    assert!(
        adaptive.throttled_ingest < fixed.throttled_ingest,
        "adaptive {} vs fixed {}",
        adaptive.throttled_ingest,
        fixed.throttled_ingest
    );
}

#[test]
fn holistic_scaling_is_cheaper_than_static_peak() {
    // The §1 economic argument ([15]): scaling all tiers beats
    // provisioning statically for the peak.
    let diurnal = || Workload::diurnal(1_200.0, 1_000.0);

    // Static deployment sized for the ~2,200 rec/s peak.
    let peak_flow = flower_core::flow::FlowBuilder::new("peak")
        .ingestion(flower_core::flow::Platform::kinesis("clicks", 4))
        .analytics(flower_core::flow::Platform::storm("counter", 3))
        .storage(flower_core::flow::Platform::dynamo("aggregates", 200.0))
        .build()
        .unwrap();
    let mut static_manager = ElasticityManager::builder(peak_flow)
        .workload(diurnal())
        .all_controllers(ControllerSpec::Static)
        .seed(9)
        .build()
        .unwrap();
    let static_report = static_manager.run_for_mins(240); // two diurnal cycles

    let mut elastic_manager = ElasticityManager::builder(clickstream_flow())
        .workload(diurnal())
        .seed(9)
        .build()
        .unwrap();
    let elastic_report = elastic_manager.run_for_mins(240);

    assert!(
        elastic_report.total_cost_dollars < static_report.total_cost_dollars,
        "elastic ${} vs static ${}",
        elastic_report.total_cost_dollars,
        static_report.total_cost_dollars
    );
    // And without materially worse delivery.
    assert!(
        elastic_report.ingest_loss_rate() < static_report.ingest_loss_rate() + 0.10,
        "elastic loss {} vs static loss {}",
        elastic_report.ingest_loss_rate(),
        static_report.ingest_loss_rate()
    );
}

#[test]
fn monitoring_period_affects_reaction_granularity() {
    let fast = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::step(500.0, 3_000.0, SimTime::from_mins(5)))
        .monitoring_period(SimDuration::from_secs(15))
        .seed(2)
        .build()
        .unwrap()
        .run_for_mins(20);
    let slow = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::step(500.0, 3_000.0, SimTime::from_mins(5)))
        .monitoring_period(SimDuration::from_mins(3))
        .seed(2)
        .build()
        .unwrap()
        .run_for_mins(20);
    // Faster monitoring yields at least as many scaling actions.
    assert!(
        fast.total_actions() >= slow.total_actions(),
        "fast {} vs slow {}",
        fast.total_actions(),
        slow.total_actions()
    );
}

#[test]
fn mixed_controllers_per_layer() {
    // The wizard allows different controllers per layer (§4 step 2).
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::constant(2_500.0))
        .controller(Layer::INGESTION, ControllerSpec::adaptive(70.0))
        .controller(Layer::ANALYTICS, ControllerSpec::rule_based(60.0))
        .controller(Layer::STORAGE, ControllerSpec::Static)
        .seed(4)
        .build()
        .unwrap();
    assert_eq!(
        manager.controller_spec(Layer::INGESTION).unwrap().name(),
        "adaptive"
    );
    assert_eq!(
        manager.controller_spec(Layer::ANALYTICS).unwrap().name(),
        "rule-based"
    );
    let report = manager.run_for_mins(15);
    // The static storage layer never moves.
    assert!(report
        .actuators(Layer::STORAGE)
        .iter()
        .all(|&(_, v)| v == 100.0));
    // The managed layers do.
    assert!(report.actuators(Layer::INGESTION).last().unwrap().1 > 2.0);
}

#[test]
fn rejections_are_tracked_not_fatal() {
    // Aggressive scale-down against DynamoDB's decrease limit generates
    // rejected actuations; the episode must finish and count them.
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::custom(Box::new(flower_workload::MmppRate::new(
            200.0,
            4_000.0,
            SimDuration::from_mins(6),
            SimDuration::from_mins(6),
            flower_sim::SimRng::seed(8),
        ))))
        .monitoring_period(SimDuration::from_secs(15))
        .seed(8)
        .build()
        .unwrap();
    let report = manager.run_for_mins(120);
    // Long bursty episodes exercise reshard-in-progress and the WCU
    // decrease limit; at least some actuations are expected to bounce.
    let total_rejections: u64 = report.rejected_actuations.iter().sum();
    assert!(
        total_rejections > 0,
        "expected some control-plane rejections"
    );
    assert_eq!(report.arrival_trace.len(), 120 * 60);
}

#[test]
fn rcu_loop_manages_read_capacity() {
    use flower_cloud::ReadWorkloadConfig;

    // Heavy read traffic against a table provisioned with the default
    // 50 RCU; the fourth control loop must grow read capacity while the
    // write loops manage the rest of the flow.
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::constant(1_500.0))
        .read_workload(ReadWorkloadConfig {
            base_rate: 300.0, // 300 reads/s of 2 KiB eventually-consistent
            per_record: 0.0,
            avg_item_bytes: 2_048,
            eventually_consistent: true,
        })
        .rcu_controller(ControllerSpec::adaptive_for_capacity(70.0), 1.0, 2_000.0)
        .seed(12)
        .build()
        .unwrap();
    let report = manager.run_for_mins(60);

    // Demand ≈ 150 RCU/s; at the 70% target the loop converges toward
    // ~215 RCU (scale-down after the initial burst-absorption overshoot
    // is deliberately slow — Eq. 7 drives the gain to its floor under
    // negative error).
    let final_rcu = report.rcu_trace.last().unwrap().1;
    assert!(final_rcu > 100.0, "RCU stuck at {final_rcu}");
    assert!(report.rcu_actions > 0, "the RCU loop never acted");
    // Late read utilization should be near the 70% setpoint.
    let tail: Vec<f64> = report
        .read_utilization_trace
        .iter()
        .rev()
        .take(300)
        .map(|&(_, v)| v)
        .collect();
    let avg = tail.iter().sum::<f64>() / tail.len() as f64;
    // Either the loop trimmed the overshoot back toward the setpoint, or
    // it is pinned above demand because the table's *shared* daily
    // capacity-decrease budget (4/day, split with the WCU loop) ran out —
    // the faithful DynamoDB friction this simulator models.
    let decreases_exhausted = manager.engine().dynamo().decreases_today() >= 4;
    assert!(
        (35.0..110.0).contains(&avg) || decreases_exhausted,
        "late read utilization {avg}% with decreases_today = {}",
        manager.engine().dynamo().decreases_today()
    );
    // And the read metrics exist in the store for the monitor.
    let monitor = flower_core::monitor::CrossPlatformMonitor::for_clickstream(
        "clicks",
        "counter",
        "aggregates",
    );
    let snap = monitor.snapshot(
        manager.engine().metrics(),
        manager.now(),
        SimDuration::from_mins(5),
    );
    assert!(snap.row("ConsumedReadCapacityUnits").is_some());
    assert!(snap.row("ProvisionedReadCapacityUnits").unwrap().latest > 100.0);
}

#[test]
fn without_read_workload_the_read_path_is_idle() {
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::constant(500.0))
        .seed(2)
        .build()
        .unwrap();
    let report = manager.run_for_mins(3);
    assert_eq!(report.throttled_reads, 0);
    assert_eq!(report.rcu_actions, 0);
    assert!(report.read_utilization_trace.iter().all(|&(_, v)| v == 0.0));
    // RCU stays at the default 50.
    assert!(report.rcu_trace.iter().all(|&(_, v)| v == 50.0));
}
