// Test target: unwrap/expect and exact comparison are deliberate here
// (determinism assertions compare exported traces byte-for-byte).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: fault injection and the resilience policy, end to end.
//!
//! Three contracts are pinned here. First, chaos is *observable*: every
//! scenario preset leaves typed `chaos.*`/`resilience.*` events in the
//! trace — faults, retries, timeouts, degraded-mode entries and exits —
//! and each names the layer it hit. Second, chaos is *survivable*: after
//! the fault window closes, the flow re-converges out of overload on the
//! same flash-crowd episode the golden fixture pins. Third, chaos is
//! *deterministic*: per-layer RNG streams make a faulted trace
//! byte-identical at any worker count, and the zero-fault plan installs
//! nothing at all — reproducing the pre-chaos golden fixture byte for
//! byte.

use flower_core::flow::clickstream_flow;
use flower_core::prelude::*;
use flower_core::replan::{PlanSelection, ReplanConfig, Replanner};
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;
use flower_obs::{kind, parse_trace, Recorder, Trace};
use flower_sim::{SimDuration, SimTime};

fn replanner(workers: Option<usize>) -> Replanner {
    Replanner::for_clickstream(
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(15),
            analysis_window: SimDuration::from_mins(15),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 32,
                generations: 24,
                seed: 9,
                ..Default::default()
            },
            workers,
            warm_start: false,
            warm_generations: 12,
        },
        "clicks",
        "counter",
        "aggregates",
        ShareProblem::worked_example(1.0),
    )
}

/// The golden 45-minute flash-crowd episode, with faults injected.
fn faulted_episode(plan: FaultPlan, workers: Option<usize>) -> (EpisodeReport, String) {
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::flash_crowd(
            600.0,
            9_000.0,
            SimTime::from_mins(10),
        ))
        .replanner(replanner(workers))
        .recorder(Recorder::with_capacity(65_536))
        .seed(5)
        .faults(plan)
        .build()
        .unwrap();
    let report = manager.run_for_mins(45);
    (report, manager.recorder().to_jsonl())
}

fn preset(name: &str) -> FaultPlan {
    FaultPlan::preset(name).unwrap()
}

/// Every `chaos.*`/`resilience.*` event must name the layer it hit —
/// the same attribution rule `cargo xtask trace` enforces in CI.
fn assert_fault_events_are_attributed(trace: &Trace) {
    for e in &trace.events {
        if e.kind.starts_with("chaos.") || e.kind.starts_with("resilience.") {
            assert!(
                e.str("layer").is_some(),
                "`{}` event at t={}ms has no `layer` field",
                e.kind,
                e.t_ms
            );
        }
    }
}

/// After the last fault window closes (all presets close by minute 25),
/// the controllers must pull the flow back out of overload: the final
/// five minutes of ingestion utilization sit inside the working band.
fn assert_reconverged(report: &EpisodeReport) {
    let meas = report.measurements(Layer::INGESTION);
    let tail = &meas[meas.len() - 300..];
    let mean = tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64;
    assert!(
        mean > 1.0 && mean < 100.0,
        "ingestion utilization did not re-converge after the fault window: \
         last-5-min mean {mean:.1}%"
    );
}

#[test]
fn zero_fault_plan_reproduces_the_golden_fixture() {
    // `--faults none` must install neither the injector nor the
    // resilience runtime: the episode reproduces the pre-chaos golden
    // fixture byte for byte.
    let golden = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/golden_trace_3layer.jsonl"
    ));
    let (_, current) = faulted_episode(FaultPlan::none(), Some(2));
    assert!(
        current == golden,
        "a zero-fault plan perturbed the trace (first differing line: {:?})",
        current
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a} != {b}", i + 1))
    );
}

#[test]
fn flaky_actuator_retries_recovers_and_stays_deterministic() {
    let (report, one) = faulted_episode(preset("flaky-actuator"), Some(1));
    let (_, eight) = faulted_episode(preset("flaky-actuator"), Some(8));
    assert_eq!(one, eight, "faulted trace differs across worker counts");

    let trace = parse_trace(&one).unwrap();
    assert_eq!(trace.dropped, 0, "flight recorder overflowed");
    assert_fault_events_are_attributed(&trace);
    let counts = trace.counts_by_kind();
    assert!(counts.get(kind::CHAOS_FAULT).copied().unwrap_or(0) > 0);
    assert!(counts.get(kind::RESILIENCE_RETRY).copied().unwrap_or(0) > 0);
    // Recovery activity follows the injected faults. (Retries are not
    // exclusive to chaos — the engine can refuse an actuation on its
    // own — so anchor on the first *injected* fault and require retry
    // traffic after it.)
    let first_fault = trace
        .events
        .iter()
        .find(|e| e.kind == kind::CHAOS_FAULT)
        .unwrap()
        .t_ms;
    assert!(trace
        .events
        .iter()
        .any(|e| e.kind == kind::RESILIENCE_RETRY && e.t_ms > first_fault));
    assert_reconverged(&report);
}

#[test]
fn stale_sensor_enters_and_exits_degraded_mode() {
    let (report, one) = faulted_episode(preset("stale-sensor"), Some(1));
    let (_, eight) = faulted_episode(preset("stale-sensor"), Some(8));
    assert_eq!(one, eight, "faulted trace differs across worker counts");

    let trace = parse_trace(&one).unwrap();
    assert_fault_events_are_attributed(&trace);
    let degraded: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == kind::RESILIENCE_DEGRADED)
        .collect();
    let enters = degraded
        .iter()
        .filter(|e| e.str("phase") == Some("enter"))
        .count();
    let exits = degraded
        .iter()
        .filter(|e| e.str("phase") == Some("exit"))
        .count();
    // Both dropped-out layers (ingestion, analytics) enter and recover.
    assert!(enters >= 2, "expected >= 2 degraded entries, got {enters}");
    assert_eq!(enters, exits, "every degraded entry must be exited");
    // While degraded, the held share is reported so the timeline can
    // show what the flow froze at.
    for e in &degraded {
        assert!(e.f64("held").is_some(), "degraded event without `held`");
    }
    assert_reconverged(&report);
}

#[test]
fn slow_resize_trips_actuation_timeouts_then_lands() {
    let (report, one) = faulted_episode(preset("slow-resize"), Some(1));
    let (_, eight) = faulted_episode(preset("slow-resize"), Some(8));
    assert_eq!(one, eight, "faulted trace differs across worker counts");

    let trace = parse_trace(&one).unwrap();
    assert_fault_events_are_attributed(&trace);
    let counts = trace.counts_by_kind();
    // The preset's 150 s landing delay exceeds the 120 s actuation
    // timeout, so every delayed resize is declared timed out first and
    // still lands 30 s later as an ordinary cloud resize.
    assert!(counts.get(kind::CHAOS_FAULT).copied().unwrap_or(0) > 0);
    assert!(counts.get(kind::RESILIENCE_TIMEOUT).copied().unwrap_or(0) > 0);
    assert!(counts.get(kind::CLOUD_RESIZE).copied().unwrap_or(0) > 0);
    assert_reconverged(&report);
}

#[test]
fn throttle_storm_injects_and_diverges_from_golden() {
    let golden = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/golden_trace_3layer.jsonl"
    ));
    let (report, doc) = faulted_episode(preset("throttle-storm"), Some(2));
    assert_ne!(doc, golden, "a storming episode cannot match the fixture");

    let trace = parse_trace(&doc).unwrap();
    assert_fault_events_are_attributed(&trace);
    let counts = trace.counts_by_kind();
    assert!(counts.get(kind::CHAOS_FAULT).copied().unwrap_or(0) > 0);
    assert!(counts.get(kind::RESILIENCE_RETRY).copied().unwrap_or(0) > 0);
    // Storms are deterministic duty cycles: every injected fault during
    // a burst is a storm-rejection at some layer.
    for e in trace.events.iter().filter(|e| e.kind == kind::CHAOS_FAULT) {
        assert_eq!(e.str("fault"), Some("storm"));
    }
    assert_reconverged(&report);
}
