// Test target: unwrap/expect and exact comparison are deliberate here
// (determinism assertions compare exported traces byte-for-byte).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: the `flower serve` daemon and record/replay identity.
//!
//! Two contracts are pinned here. First, the serve machinery is a
//! *pure shell*: driving an episode through `start_episode`/`tick`/
//! `finish_episode` with an empty command stream produces the exact
//! bytes of the pre-daemon golden fixture. Second, live sessions are
//! *replayable*: a scripted socket session — subscribe, inject a
//! fault, tweak the budget, force a replan — recorded with
//! `flower-record/v1` replays to a byte-identical JSONL trace with no
//! sockets involved.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use flower_core::flow::clickstream_flow;
use flower_core::prelude::*;
use flower_core::replan::{PlanSelection, ReplanConfig, Replanner};
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;
use flower_obs::Recorder;
use flower_serve::{parse_recording, replay, Daemon, ServeConfig};
use flower_sim::{SimDuration, SimTime};

fn replanner(cadence_mins: u64, workers: Option<usize>) -> Replanner {
    Replanner::for_clickstream(
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(cadence_mins),
            analysis_window: SimDuration::from_mins(cadence_mins),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 32,
                generations: 24,
                seed: 9,
                ..Default::default()
            },
            workers,
            warm_start: false,
            warm_generations: 12,
        },
        "clicks",
        "counter",
        "aggregates",
        ShareProblem::worked_example(1.0),
    )
}

/// The golden 45-minute flash-crowd episode from `integration_chaos`,
/// rebuilt here so the replay path can be compared against the same
/// fixture bytes.
fn golden_manager(workers: Option<usize>) -> ElasticityManager {
    ElasticityManager::builder(clickstream_flow())
        .workload(Workload::flash_crowd(
            600.0,
            9_000.0,
            SimTime::from_mins(10),
        ))
        .replanner(replanner(15, workers))
        .recorder(Recorder::with_capacity(65_536))
        .seed(5)
        .faults(FaultPlan::none())
        .build()
        .unwrap()
}

#[test]
fn empty_replay_reproduces_the_golden_fixture() {
    let golden = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/golden_trace_3layer.jsonl"
    ));
    let mut manager = golden_manager(Some(2));
    replay(&mut manager, SimDuration::from_mins(45), &[]).unwrap();
    assert_eq!(
        manager.recorder().to_jsonl(),
        golden,
        "the serve tick loop perturbed the golden trace"
    );
}

/// A small live episode for the socket round trip.
fn live_manager() -> ElasticityManager {
    ElasticityManager::builder(clickstream_flow())
        .workload(Workload::constant(600.0))
        .replanner(replanner(5, Some(2)))
        .recorder(Recorder::with_capacity(65_536))
        .seed(7)
        .build()
        .unwrap()
}

fn send(stream: &mut TcpStream, line: &str) {
    writeln!(stream, "{line}").unwrap();
}

fn read_until<'a>(reader: &mut impl BufRead, lines: &'a mut Vec<String>, what: &str) -> &'a String {
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed while waiting for {what}"
        );
        lines.push(line.trim_end().to_owned());
        let last = lines.len() - 1;
        if lines[last].contains(what) {
            return &lines[last];
        }
    }
}

#[test]
fn live_session_records_and_replays_byte_identically() {
    let record_path =
        std::env::temp_dir().join(format!("flower-record-test-{}.jsonl", std::process::id()));
    let duration = SimDuration::from_mins(10);
    let mut episode = BTreeMap::new();
    episode.insert("workload".to_owned(), "constant".to_owned());
    episode.insert("seed".to_owned(), "7".to_owned());
    let daemon = Daemon::bind(ServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        duration,
        hold: true,
        record: Some(record_path.clone()),
        episode,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = daemon.local_addr().unwrap();

    // The scripted client runs on a helper thread; the daemon's control
    // loop owns the (non-Send) manager on this one.
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut lines = Vec::new();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        read_until(&mut reader, &mut lines, "\"frame\":\"hello\"");
        send(&mut stream, "{\"frame\":\"subscribe\"}");
        send(
            &mut stream,
            "{\"frame\":\"command\",\"id\":1,\"cmd\":\"inject-fault\",\"seed\":11,\
             \"layer\":\"counter\",\"kind\":\"reject\",\"p\":1,\"for_s\":120}",
        );
        read_until(&mut reader, &mut lines, "\"id\":1");
        send(
            &mut stream,
            "{\"frame\":\"command\",\"id\":2,\"cmd\":\"set-budget\",\"budget\":2.5}",
        );
        read_until(&mut reader, &mut lines, "\"id\":2");
        send(
            &mut stream,
            "{\"frame\":\"command\",\"id\":3,\"cmd\":\"force-replan\"}",
        );
        read_until(&mut reader, &mut lines, "\"id\":3");
        send(
            &mut stream,
            "{\"frame\":\"command\",\"id\":4,\"cmd\":\"resume\"}",
        );
        read_until(&mut reader, &mut lines, "\"frame\":\"bye\"");
        lines
    });

    let mut manager = live_manager();
    let outcome = daemon.run(&mut manager).unwrap();
    let live_trace = manager.recorder().to_jsonl();
    let lines = client.join().unwrap();

    assert_eq!(outcome.clients_served, 1);
    assert_eq!(outcome.commands_applied, 4);
    assert!(!outcome.shut_down);
    // The subscriber saw acks for every command, a live event stream,
    // and a clean goodbye.
    assert!(lines.iter().any(|l| l.contains("\"frame\":\"event\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"frame\":\"ack\",\"id\":1,\"ok\":true")));
    assert!(lines.iter().any(|l| l.contains("\"frame\":\"snapshot\"")));
    assert_eq!(
        lines.last().map(String::as_str),
        Some("{\"frame\":\"bye\",\"reason\":\"episode-complete\"}")
    );

    // Replay the recording against an identically built manager: the
    // trace must be byte-identical.
    let recorded = std::fs::read_to_string(&record_path).unwrap();
    let _ = std::fs::remove_file(&record_path);
    let recording = parse_recording(&recorded).unwrap();
    assert_eq!(
        recording.commands.len(),
        3,
        "inject-fault, set-budget, force-replan (resume is wall-clock-only): {recorded}"
    );
    assert!(recording.commands.iter().all(|(t_ms, _)| *t_ms == 0));
    let mut replayed = live_manager();
    replay(&mut replayed, duration, &recording.commands).unwrap();
    assert_eq!(
        replayed.recorder().to_jsonl(),
        live_trace,
        "replay diverged from the live session"
    );
}

#[test]
fn replay_rejects_unreachable_command_stamps() {
    let mut manager = live_manager();
    let commands = vec![(500u64, flower_serve::Command::ForceReplan)];
    let err = replay(&mut manager, SimDuration::from_mins(1), &commands).unwrap_err();
    assert!(err.contains("never reached"), "{err}");

    let mut manager = live_manager();
    let commands = vec![(120_000u64, flower_serve::Command::ForceReplan)];
    let err = replay(&mut manager, SimDuration::from_mins(1), &commands).unwrap_err();
    assert!(err.contains("beyond the episode end"), "{err}");
}
