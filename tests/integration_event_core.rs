// Test target: unwrap/expect and exact comparison are deliberate here
// (determinism assertions compare exported traces byte-for-byte).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: the event-driven episode core over a month of SimTime.
//!
//! The discrete-event rewrite's reason to exist is that episode cost
//! scales with *events*, not *seconds*: a 30-day episode that goes
//! quiet after its first hour must cost on the order of its scheduled
//! control/alarm/replan events, never its 2.6 million simulated
//! seconds. This file pins that — bounded event counts and bounded
//! wall clock on a quiet-heavy month — and pins determinism at scale:
//! the full structured trace of the month is byte-identical whether
//! the replanner's share analysis fans out over 1 worker or 8.

use std::time::Instant;

use flower_core::flow::clickstream_flow;
use flower_core::prelude::*;
use flower_core::replan::{ReplanConfig, Replanner};
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;
use flower_obs::{kind, parse_trace, Recorder};
use flower_sim::{SimDuration, SimTime};

const DAYS: u64 = 30;

/// A 30-day episode that is busy for one hour and silent for the rest,
/// fast-forwarded, traced, replanning every 10 days.
fn month_long_episode(workers: usize) -> (EpisodeReport, String) {
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::step(2_000.0, 0.0, SimTime::from_hours(1)))
        .monitoring_period(SimDuration::from_mins(5))
        .replanner(Replanner::for_clickstream(
            ReplanConfig {
                cadence: SimDuration::from_hours(24 * 10),
                analysis_window: SimDuration::from_mins(30),
                nsga2: Nsga2Config {
                    population: 32,
                    generations: 24,
                    seed: 9,
                    ..Default::default()
                },
                workers: Some(workers),
                ..Default::default()
            },
            "clicks",
            "counter",
            "aggregates",
            ShareProblem::worked_example(1.0),
        ))
        .recorder(Recorder::with_capacity(65_536))
        .fast_forward(true)
        .seed(11)
        .build()
        .unwrap();
    let report = manager.run_for_mins(DAYS * 24 * 60);
    assert_eq!(
        manager.now(),
        SimTime::from_hours(DAYS * 24),
        "episode must reach the 30-day mark"
    );
    let doc = manager.recorder().to_jsonl();
    (report, doc)
}

#[test]
fn quiet_heavy_month_costs_events_not_seconds() {
    let started = Instant::now();
    let (report, doc) = month_long_episode(2);
    let elapsed = started.elapsed();

    // Cost scales with scheduled events. The tick-era core paid one
    // engine step per simulated second — at least 2.59 million for this
    // episode before any housekeeping. The event core pays for the
    // busy hour, the control/alarm grids, and one catch-up tick per
    // quiet gap: well under a fifth of the seconds.
    let seconds = DAYS * 24 * 60 * 60;
    assert!(
        report.events_executed < seconds / 5,
        "{} events for {seconds} quiet-heavy seconds — quiet windows are not being skipped",
        report.events_executed
    );
    assert!(
        report.events_executed > 10_000,
        "suspiciously few events ({}) — did the grids run?",
        report.events_executed
    );
    assert!(
        report.queue_high_water > 0 && report.queue_high_water < 64,
        "queue high-water {} outside sane bounds",
        report.queue_high_water
    );
    // Generous bound for slow single-core CI hosts (looser still without
    // optimizations); the point is that the month completes in test time
    // at all (the pre-event-core fixed-step loop plus tracing would not).
    let limit = if cfg!(debug_assertions) { 900 } else { 240 };
    assert!(
        elapsed.as_secs() < limit,
        "30-day episode took {elapsed:?} of wall clock (limit {limit}s)"
    );

    // The busy first hour produced real (Poisson-sampled) work around
    // the 2 000 rec/s intensity; the quiet tail produced none, so the
    // month's total is just that hour's.
    let expected = 2_000 * 60 * 60;
    assert!(
        report.offered_records.abs_diff(expected) < expected / 20,
        "offered {} far from the busy hour's ~{expected}",
        report.offered_records
    );

    // Replans fired on their 10-day cadence and reached the optimizer
    // even though the analysis window held only quiet samples.
    let trace = parse_trace(&doc).unwrap();
    let counts = trace.counts_by_kind();
    let outcomes = counts.get(kind::REPLAN_OUTCOME).copied().unwrap_or(0);
    let failures = counts.get(kind::REPLAN_FAILED).copied().unwrap_or(0);
    assert!(
        (2..=3).contains(&(outcomes + failures)),
        "expected 2-3 replan rounds over 30 days at a 10-day cadence, \
         got {outcomes} outcomes + {failures} failures"
    );
    assert!(
        outcomes >= 1 && counts.get(kind::NSGA2_GENERATION).copied().unwrap_or(0) > 0,
        "no replan reached the NSGA-II solve; kinds seen: {counts:?}"
    );

    // Event timestamps stay ordered and inside the episode even when
    // the clock jumps across quiet windows.
    let mut last = 0;
    for e in &trace.events {
        assert!(e.t_ms >= last, "t_ms went backwards at seq {}", e.seq);
        last = e.t_ms;
    }
    assert!(last <= seconds * 1_000);
}

#[test]
fn month_long_trace_is_byte_identical_across_worker_counts() {
    let (report_one, one) = month_long_episode(1);
    let (report_eight, eight) = month_long_episode(8);
    assert!(!one.is_empty());
    assert!(
        one == eight,
        "1-worker and 8-worker month-long traces differ (first differing line: {:?})",
        one.lines()
            .zip(eight.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a} != {b}", i + 1))
    );
    assert_eq!(report_one, report_eight, "episode reports differ");
}
