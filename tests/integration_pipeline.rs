// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: the full Flower pipeline in paper order — learn
//! dependencies (§3.1), derive resource shares under a budget (§3.2),
//! then run provisioning inside the share bounds (§3.3) and monitor it
//! (§3.4).

use flower_core::config::ControllerSpec;
use flower_core::dependency::DependencyAnalyzer;
use flower_core::flow::{clickstream_flow, Layer};
use flower_core::monitor::CrossPlatformMonitor;
use flower_core::prelude::*;
use flower_core::share::{Constraint, ShareProblem};
use flower_nsga2::Nsga2Config;
use flower_sim::{SimDuration, SimTime};

#[test]
fn end_to_end_paper_workflow() {
    // ---- Phase 0: collect workload logs on a modest static deployment.
    let mut probe = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::diurnal(1_500.0, 1_200.0))
        .all_controllers(ControllerSpec::Static)
        .seed(21)
        .build()
        .unwrap();
    probe.run_for_mins(90);

    // ---- Phase 1 (§3.1): learn cross-layer dependencies from the logs.
    let analyzer = DependencyAnalyzer::for_clickstream("clicks", "counter", "aggregates");
    let deps = analyzer
        .dependencies(
            probe.engine().metrics(),
            SimTime::ZERO,
            SimTime::from_mins(90),
        )
        .unwrap();
    assert!(!deps.is_empty(), "no dependencies learned");
    let strongest = &deps[0];
    assert!(strongest.correlation().abs() > 0.7);

    // ---- Phase 2 (§3.2): resource share analysis under a budget,
    // including a dependency-derived constraint band.
    let mut problem = ShareProblem::worked_example(1.0);
    // Example of Eq. 5 in constraint form: keep VMs within a band of the
    // regression between shards and VMs implied by capacity ratios.
    problem.constraints.extend(Constraint::equality_band(
        Layer::ANALYTICS,
        Layer::INGESTION,
        0.5,
        0.0,
        4.0,
    ));
    let plans = ShareAnalyzer::new(problem)
        .with_config(Nsga2Config {
            population: 60,
            generations: 80,
            seed: 13,
            ..Default::default()
        })
        .solve()
        .unwrap();
    assert!(!plans.is_empty());
    let plan = &plans[0]; // the maximum-share plan
    assert!(plan.hourly_cost <= 1.0 + 1e-9);

    // ---- Phase 3 (§3.3): provision with the plan as upper bounds.
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::diurnal(1_500.0, 1_200.0))
        .bounds(Layer::INGESTION, 1.0, plan.shards().max(2.0))
        .bounds(Layer::ANALYTICS, 1.0, plan.vms().max(2.0))
        .bounds(Layer::STORAGE, 1.0, plan.wcu().max(100.0))
        .seed(21)
        .build()
        .unwrap();
    let report = manager.run_for_mins(120);

    // Bounds hold throughout.
    let max_shards = report
        .actuators(Layer::INGESTION)
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    assert!(max_shards <= plan.shards().max(2.0) + 1e-9);

    // ---- Phase 4 (§3.4): the consolidated monitor sees the episode.
    let monitor = CrossPlatformMonitor::for_clickstream("clicks", "counter", "aggregates");
    let snap = monitor.snapshot(
        manager.engine().metrics(),
        manager.now(),
        SimDuration::from_mins(10),
    );
    assert_eq!(snap.rows.len(), 17);
    // The hourly spend implied by the final deployment respects the plan:
    // it cannot exceed the budget the share analysis was given, because
    // every actuator is capped by the plan's shares.
    let final_vms = report.actuators(Layer::ANALYTICS).last().unwrap().1;
    let final_wcu = report.actuators(Layer::STORAGE).last().unwrap().1;
    let hourly = flower_cloud::PriceList::default().hourly_cost(
        report.actuators(Layer::INGESTION).last().unwrap().1,
        final_vms,
        final_wcu,
        0.0,
    );
    assert!(hourly <= 1.05, "final deployment spends ${hourly}/h");
}

#[test]
fn share_plan_bounds_prevent_budget_blowout_under_overload() {
    // Even under hopeless overload, the share-analysis bounds keep the
    // deployment inside the budget: the defining property of combining
    // §3.2 with §3.3.
    let plans = ShareAnalyzer::new(ShareProblem::worked_example(0.6))
        .with_config(Nsga2Config {
            population: 60,
            generations: 80,
            seed: 3,
            ..Default::default()
        })
        .solve()
        .unwrap();
    let plan = &plans[0];
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::constant(20_000.0))
        .bounds(Layer::INGESTION, 1.0, plan.shards().max(2.0))
        .bounds(Layer::ANALYTICS, 1.0, plan.vms().max(2.0))
        .bounds(Layer::STORAGE, 1.0, plan.wcu().max(100.0))
        .seed(17)
        .build()
        .unwrap();
    let report = manager.run_for_mins(60);
    let peak_hourly = report
        .actuators(Layer::INGESTION)
        .iter()
        .zip(
            report
                .actuators(Layer::ANALYTICS)
                .iter()
                .zip(report.actuators(Layer::STORAGE).iter()),
        )
        .map(|(&(_, s), (&(_, v), &(_, w)))| {
            flower_cloud::PriceList::default().hourly_cost(s, v, w, 0.0)
        })
        .fold(0.0, f64::max);
    assert!(
        peak_hourly <= 0.6 + 0.05,
        "peak spend ${peak_hourly}/h exceeds the budget band"
    );
    // The overload is visible as sustained throttling — the budget, not
    // the controller, is the binding constraint.
    assert!(report.ingest_loss_rate() > 0.5);
}

#[test]
fn replanner_updates_bounds_during_an_episode() {
    use flower_core::replan::{PlanSelection, ReplanConfig, Replanner};

    let replanner = Replanner::for_clickstream(
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(20),
            analysis_window: SimDuration::from_mins(20),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 60,
                generations: 60,
                seed: 4,
                ..Default::default()
            },
            workers: None,
            warm_start: false,
            warm_generations: 12,
        },
        "clicks",
        "counter",
        "aggregates",
        flower_core::share::ShareProblem::worked_example(1.0),
    );

    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::diurnal(1_800.0, 1_400.0))
        .replanner(replanner)
        .seed(6)
        .build()
        .unwrap();
    let report = manager.run_for_mins(90);

    // The replanner fired at 20, 40, 60, 80 minutes.
    let rounds = manager.replan_history();
    assert!(
        (3..=5).contains(&rounds.len()),
        "expected ~4 replan rounds, got {}",
        rounds.len()
    );
    for round in rounds {
        assert!(round.plan.hourly_cost <= 1.0 + 1e-9);
        assert!(round.front_size >= 1);
    }
    // With the plan's shares as maximum bounds, the deployment can never
    // spend more per hour than the budget (plus the cheapest layer's
    // rounding slack).
    let final_hourly = flower_cloud::PriceList::default().hourly_cost(
        report.actuators(Layer::INGESTION).last().unwrap().1,
        report.actuators(Layer::ANALYTICS).last().unwrap().1,
        report.actuators(Layer::STORAGE).last().unwrap().1,
        0.0,
    );
    assert!(final_hourly <= 1.1, "final spend ${final_hourly}/h");
}
