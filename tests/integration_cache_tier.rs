// Test target: unwrap/expect and exact comparison are deliberate here
// (determinism assertions compare exported traces byte-for-byte).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: a fourth layer — the cache tier — driven end-to-end
//! through the registry with zero special-casing.
//!
//! The paper's stack is three layers; the `LayerService` registry is
//! open. This episode mirrors `examples/cache_tier.rs`: the cache gets
//! its own capacity unit, price, control loop, structural dependency
//! edge to storage, and NSGA-II genome slot, and its lifecycle must
//! show up in the same trace with the same determinism guarantees as
//! the paper layers.

use flower_cloud::{MetricId, PriceList, ReadWorkloadConfig};
use flower_core::flow::{cached_clickstream_flow, Layer};
use flower_core::prelude::*;
use flower_core::share::Constraint;
use flower_nsga2::Nsga2Config;
use flower_obs::{kind, parse_trace, Recorder};
use flower_sim::SimTime;

/// The example's 45-minute four-layer episode, traced.
fn traced_cached_episode(workers: Option<usize>) -> String {
    let prices = PriceList::default();
    let problem = ShareProblem::worked_example(1.0)
        .with_layer(Layer::CACHE, prices.cache_node_hour, 20.0)
        .with_constraint(Constraint::ratio(0.001, Layer::STORAGE, 1.0, Layer::CACHE));
    let replanner = Replanner::for_clickstream(
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(15),
            analysis_window: SimDuration::from_mins(15),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 32,
                generations: 24,
                seed: 9,
                ..Default::default()
            },
            workers,
            warm_start: false,
            warm_generations: 12,
        },
        "clicks",
        "counter",
        "aggregates",
        problem,
    )
    .with_resource_metric(
        Layer::CACHE,
        MetricId::new(
            flower_cloud::engine::metric_names::NS_CACHE,
            flower_cloud::engine::metric_names::CACHE_NODES,
            "hot-aggregates",
        ),
    );
    let mut manager = ElasticityManager::builder(cached_clickstream_flow())
        .workload(Workload::flash_crowd(
            600.0,
            9_000.0,
            SimTime::from_mins(10),
        ))
        .read_workload(ReadWorkloadConfig {
            base_rate: 150.0,
            per_record: 0.5,
            ..Default::default()
        })
        .replanner(replanner)
        .recorder(Recorder::with_capacity(65_536))
        .seed(5)
        .build()
        .unwrap();
    manager.run_for_mins(45);
    manager.recorder().to_jsonl()
}

#[test]
fn cache_layer_flows_through_plan_actuation_and_trace() {
    let doc = traced_cached_episode(Some(2));
    let trace = parse_trace(&doc).unwrap();
    assert_eq!(trace.dropped, 0, "flight recorder overflowed");

    // The cache tier's deployed-node gauge is published every tick,
    // alongside the three paper layers' gauges.
    assert!(
        doc.contains("\"cloud.cache_nodes\""),
        "no cache-node gauge in the trace"
    );

    // Every successful replan carries a cache_nodes share: the fourth
    // genome slot flowed through NSGA-II into the chosen plan.
    let outcomes: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == kind::REPLAN_OUTCOME)
        .collect();
    assert!(!outcomes.is_empty(), "no successful replan in 45 min");
    for o in &outcomes {
        assert!(
            o.f64(Layer::CACHE.resource()).is_some(),
            "replan outcome missing a cache_nodes share: {o:?}"
        );
        assert!(o.f64("shards").is_some());
        assert!(o.f64("vms").is_some());
        assert!(o.f64("wcu").is_some());
    }

    // The cache's own control loop decides — and its decisions reach
    // the actuator as cache_nodes resizes, same as any paper layer.
    let cache_decisions = trace
        .events
        .iter()
        .filter(|e| {
            e.kind == kind::CONTROL_DECISION && e.str("layer") == Some(Layer::CACHE.label())
        })
        .count();
    assert!(
        cache_decisions > 0,
        "the cache layer's control loop never ran"
    );
    let cache_resizes = trace
        .events
        .iter()
        .filter(|e| {
            e.kind == kind::CLOUD_RESIZE && e.str("resource") == Some(Layer::CACHE.resource())
        })
        .count();
    assert!(
        cache_resizes > 0,
        "no cache_nodes resize in a 15x flash crowd with a tracking read load"
    );
}

#[test]
fn cached_trace_is_byte_identical_across_worker_counts() {
    let one = traced_cached_episode(Some(1));
    let two = traced_cached_episode(Some(2));
    let eight = traced_cached_episode(Some(8));
    assert!(!one.is_empty());
    assert_eq!(one, two, "1-worker and 2-worker traces differ");
    assert_eq!(one, eight, "1-worker and 8-worker traces differ");
}
