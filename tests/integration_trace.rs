// Test target: unwrap/expect and exact comparison are deliberate here
// (determinism assertions compare exported traces byte-for-byte).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: the structured-event trace of a full elasticity episode.
//!
//! Two contracts are pinned here. First, a traced episode is *complete*:
//! every instrumented subsystem — provisioning decisions, adaptive gain
//! updates, cloud actuations, alarm transitions, replanning outcomes,
//! and the NSGA-II generations inside each replan — shows up in one
//! JSONL document. Second, the trace is *deterministic*: same seed ⇒
//! byte-identical bytes regardless of how many workers the replanner's
//! share analysis fans out over.

use flower_core::flow::clickstream_flow;
use flower_core::prelude::*;
use flower_core::replan::{PlanSelection, ReplanConfig, Replanner};
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;
use flower_obs::{kind, parse_trace, Recorder};
use flower_sim::{SimDuration, SimTime};

fn replanner(workers: Option<usize>) -> Replanner {
    Replanner::for_clickstream(
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(15),
            analysis_window: SimDuration::from_mins(15),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 32,
                generations: 24,
                seed: 9,
                ..Default::default()
            },
            workers,
            warm_start: false,
            warm_generations: 12,
        },
        "clicks",
        "counter",
        "aggregates",
        ShareProblem::worked_example(1.0),
    )
}

/// A 45-minute flash-crowd episode with replanning, traced end to end.
fn traced_episode(workers: Option<usize>) -> String {
    let mut manager = ElasticityManager::builder(clickstream_flow())
        .workload(Workload::flash_crowd(
            600.0,
            9_000.0,
            SimTime::from_mins(10),
        ))
        .replanner(replanner(workers))
        .recorder(Recorder::with_capacity(65_536))
        .seed(5)
        .build()
        .unwrap();
    manager.run_for_mins(45);
    manager.recorder().to_jsonl()
}

#[test]
fn traced_episode_emits_events_from_every_source() {
    let doc = traced_episode(None);
    let trace = parse_trace(&doc).unwrap();
    assert_eq!(trace.dropped, 0, "flight recorder overflowed");
    let counts = trace.counts_by_kind();

    // Every instrumented subsystem reports: the control loop, the
    // adaptive gain trajectory, the cloud actuator, the alarm evaluator,
    // the replanner, and the NSGA-II optimizer inside it.
    for required in [
        kind::CONTROL_DECISION,
        kind::CONTROL_GAIN,
        kind::CLOUD_RESIZE,
        kind::ALARM_TRANSITION,
        kind::REPLAN_OUTCOME,
        kind::NSGA2_GENERATION,
        kind::SPAN_ENTER,
        kind::SPAN_EXIT,
    ] {
        assert!(
            counts.get(required).copied().unwrap_or(0) > 0,
            "no `{required}` events in the trace; kinds seen: {counts:?}"
        );
    }

    // The flash crowd overwhelms the initial deployment hard enough to
    // throttle at least one layer before the controllers catch up.
    assert!(
        counts.get(kind::CLOUD_THROTTLE).copied().unwrap_or(0) > 0,
        "expected throttling under a 15x flash crowd; kinds seen: {counts:?}"
    );

    // One control decision per layer per 30-second period for 45 min.
    let decisions = counts[kind::CONTROL_DECISION];
    assert!(
        (200..=300).contains(&decisions),
        "expected ~270 control decisions, got {decisions}"
    );

    // Replan rounds fired at 15 and 30 minutes (the 45-minute boundary
    // is the episode end). A round may legitimately fail — e.g. the
    // analysis window is too thin to learn dependencies mid-flash — and
    // then it shows up as `replan.failed` instead of an outcome.
    let replans = counts[kind::REPLAN_OUTCOME];
    let failed = counts.get(kind::REPLAN_FAILED).copied().unwrap_or(0);
    assert!(replans >= 1, "no successful replan in 45 min");
    assert!(
        (2..=3).contains(&(replans + failed)),
        "expected 2-3 replan rounds, got {replans} outcomes + {failed} failures"
    );
    // Every round that reached the optimizer traced all generations
    // plus the initial population (24 generations + 1).
    assert!(counts[kind::NSGA2_GENERATION] >= replans * 25);
    assert_eq!(counts[kind::NSGA2_GENERATION] % 25, 0);

    // Event timestamps never run backwards and stay inside the episode.
    let mut last = 0;
    for e in &trace.events {
        assert!(e.t_ms >= last, "t_ms went backwards at seq {}", e.seq);
        last = e.t_ms;
    }
    assert!(last <= 45 * 60 * 1_000);

    // The summary aggregates agree with the event stream.
    let summary = trace.summary.as_obj().unwrap();
    let counter = |name: &str| {
        summary
            .get("counters")
            .and_then(|c| c.as_obj())
            .and_then(|c| c.get(name))
            .and_then(flower_obs::JsonValue::as_num)
            .unwrap_or(0.0) as usize
    };
    assert_eq!(counter("control.decisions"), decisions);
    assert_eq!(counter("replan.rounds"), replans + failed);
    let spans = summary.get("spans").and_then(|s| s.as_obj()).unwrap();
    assert!(spans.contains_key("episode.run"), "spans: {spans:?}");
}

#[test]
fn trace_matches_pre_registry_golden_fixture() {
    // The fixture was exported by the hard-wired three-layer stack
    // before the LayerService-registry refactor. The registry must
    // reproduce it byte for byte: same events, same field order, same
    // float formatting — proof that the generalization changed no
    // observable behavior of the paper's three-layer flow.
    let golden = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/golden_trace_3layer.jsonl"
    ));
    let current = traced_episode(Some(2));
    assert!(
        current == golden,
        "trace diverged from the pre-refactor golden fixture \
         (first differing line: {:?})",
        current
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a} != {b}", i + 1))
    );
}

#[test]
fn resource_vector_trace_round_trips_byte_identically() {
    use flower_cloud::ResourceVector;
    use flower_core::flow::Layer;

    // A plan over three of the four registered layers: the cache layer
    // is deliberately absent, and its absence must survive the round
    // trip — no synthesized zero-unit field, no dropped field.
    let plan = ResourceVector::from_pairs([
        (Layer::INGESTION, 6.0),
        (Layer::ANALYTICS, 3.0),
        (Layer::STORAGE, 431.0),
    ]);
    let recorder = Recorder::with_capacity(64);
    recorder.set_now(SimTime::from_mins(15));
    let mut fields: Vec<(&'static str, flower_obs::FieldValue)> =
        vec![("hourly_cost", 0.9714.into())];
    for (layer, units) in plan.iter() {
        fields.push((layer.resource(), units.into()));
    }
    recorder.emit(kind::REPLAN_OUTCOME, &fields);
    for (layer, units) in plan.iter() {
        recorder.gauge(
            match layer {
                l if l == Layer::INGESTION => "cloud.shards",
                l if l == Layer::ANALYTICS => "cloud.vms",
                _ => "cloud.wcu",
            },
            units,
        );
    }
    recorder.count("replan.rounds", 1);

    let doc = recorder.to_jsonl();
    let trace = parse_trace(&doc).unwrap();
    assert_eq!(trace.to_jsonl(), doc, "re-export is not a fixed point");
    let outcome = &trace.events[0];
    assert_eq!(outcome.f64(Layer::STORAGE.resource()), Some(431.0));
    assert_eq!(
        outcome.f64(Layer::CACHE.resource()),
        None,
        "a layer absent from the plan must stay absent after the round trip"
    );
}

#[test]
fn full_episode_trace_round_trips_byte_identically() {
    // The golden 3-layer document — spans, histograms, counters, gauges,
    // hundreds of events — is a fixed point of parse → re-export.
    let golden = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/golden_trace_3layer.jsonl"
    ));
    let trace = parse_trace(golden).unwrap();
    assert_eq!(trace.to_jsonl(), golden);
}

#[test]
fn trace_is_byte_identical_across_worker_counts() {
    let one = traced_episode(Some(1));
    let two = traced_episode(Some(2));
    let eight = traced_episode(Some(8));
    assert!(!one.is_empty());
    assert_eq!(one, two, "1-worker and 2-worker traces differ");
    assert_eq!(one, eight, "1-worker and 8-worker traces differ");
}

#[test]
fn untraced_episode_is_unchanged_by_the_instrumentation() {
    let run = |recorder: Option<Recorder>| {
        let mut builder = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::diurnal(1_500.0, 1_200.0))
            .seed(7);
        if let Some(r) = recorder {
            builder = builder.recorder(r);
        }
        let mut manager = builder.build().unwrap();
        manager.run_for_mins(20)
    };
    // A disabled recorder is the default; attaching an enabled one must
    // not perturb the simulation itself, only observe it.
    let plain = run(None);
    let traced = run(Some(Recorder::with_capacity(4_096)));
    assert_eq!(plain.offered_records, traced.offered_records);
    assert_eq!(plain.accepted_records, traced.accepted_records);
    assert_eq!(plain.scaling_actions, traced.scaling_actions);
    assert_eq!(plain.total_cost_dollars, traced.total_cost_dollars);
}
