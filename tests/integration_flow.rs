// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Integration: flow building → simulated deployment → dependency
//! analysis across crates (workload → cloud → stats → core).

use flower_core::dependency::{DependencyAnalyzer, PairOutcome};
use flower_core::flow::{clickstream_flow, FlowBuilder, Layer, Platform};
use flower_core::monitor::CrossPlatformMonitor;
use flower_core::prelude::*;
use flower_sim::{SimDuration, SimRng, SimTime};
use flower_workload::{ClickStreamConfig, ClickStreamGenerator, DiurnalRate};

/// Drive the paper's click-stream flow open-loop (no controllers) for
/// `minutes` against a diurnal workload and return the engine.
fn populated_engine(minutes: u64, seed: u64) -> flower_cloud::CloudEngine {
    let flow = clickstream_flow();
    let mut config = flow.engine_config();
    // Enough static capacity that the trace is not clipped by throttling.
    config.kinesis.initial_shards = 6;
    config.storm.initial_vms = 4;
    config.dynamo.initial_wcu = 300.0;
    let mut engine = flower_cloud::CloudEngine::new(config);
    let mut generator = ClickStreamGenerator::new(ClickStreamConfig::default(), SimRng::seed(seed));
    let mut process = DiurnalRate::new(
        2_500.0,
        2_000.0,
        SimDuration::from_hours(2),
        SimDuration::ZERO,
    );
    for s in 0..minutes * 60 {
        let now = SimTime::from_secs(s);
        let records = generator.tick(&mut process, now, 1.0);
        engine.tick(&records, now, SimDuration::from_secs(1));
    }
    engine
}

#[test]
fn fig2_dependency_emerges_from_the_simulated_flow() {
    // The paper's Fig. 2: arrival rate at ingestion strongly correlated
    // with CPU at analytics (r = 0.95 there). Our simulated flow must
    // reproduce that shape end-to-end: workload → Kinesis → Storm
    // metrics → regression.
    let engine = populated_engine(120, 42);
    let analyzer = DependencyAnalyzer::for_clickstream("clicks", "counter", "aggregates");
    let deps = analyzer
        .dependencies(engine.metrics(), SimTime::ZERO, SimTime::from_mins(120))
        .unwrap();
    let ingestion_analytics = deps
        .iter()
        .find(|d| d.source.layer == Layer::INGESTION && d.target.layer == Layer::ANALYTICS)
        .expect("ingestion→analytics dependency must be detected");
    assert!(
        ingestion_analytics.correlation() > 0.9,
        "r = {}",
        ingestion_analytics.correlation()
    );
    // The fitted line has a positive slope and a positive intercept (the
    // cluster's idle CPU), the shape of the paper's Eq. 2.
    assert!(ingestion_analytics.fit.slope > 0.0);
    assert!(ingestion_analytics.fit.intercept > 0.0);
    assert!(ingestion_analytics.fit.slope_is_significant());
}

#[test]
fn analytics_storage_dependency_also_holds() {
    let engine = populated_engine(60, 7);
    let analyzer = DependencyAnalyzer::for_clickstream("clicks", "counter", "aggregates");
    let outcomes = analyzer
        .analyze(engine.metrics(), SimTime::ZERO, SimTime::from_mins(60))
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    // Analytics CPU and storage consumed-WCU both follow arrival rate,
    // so every cross-layer pair of this flow is dependent.
    let dependent = outcomes
        .iter()
        .filter(|o| matches!(o, PairOutcome::Dependent(_)))
        .count();
    assert_eq!(dependent, 3, "all pairs follow the workload in this flow");
}

#[test]
fn monitor_consolidates_all_three_services() {
    let engine = populated_engine(10, 3);
    let monitor = CrossPlatformMonitor::for_clickstream("clicks", "counter", "aggregates");
    let snap = monitor.snapshot(
        engine.metrics(),
        SimTime::from_mins(10),
        SimDuration::from_mins(5),
    );
    assert_eq!(snap.rows.len(), 17);
    let table = snap.to_table();
    for needle in ["clicks", "counter", "aggregates", "CpuUtilization"] {
        assert!(table.contains(needle), "table missing {needle}");
    }
}

#[test]
fn builder_rejects_bad_flows_and_accepts_the_reference() {
    assert!(FlowBuilder::new("x")
        .ingestion(Platform::kinesis("a", 1))
        .analytics(Platform::kinesis("b", 1))
        .storage(Platform::dynamo("c", 10.0))
        .build()
        .is_err());
    let flow = FlowBuilder::new("ok")
        .ingestion(Platform::kinesis("in", 3))
        .analytics(Platform::storm("an", 2))
        .storage(Platform::dynamo("st", 50.0))
        .build()
        .unwrap();
    let config = flow.engine_config();
    assert_eq!(config.kinesis.initial_shards, 3);
    assert_eq!(config.dynamo.initial_wcu, 50.0);
}

#[test]
fn quickstart_shape_from_lib_docs() {
    let flow = FlowBuilder::new("clickstream")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .build()
        .unwrap();
    let mut manager = ElasticityManager::builder(flow)
        .workload(Workload::diurnal(800.0, 600.0))
        .seed(7)
        .build()
        .unwrap();
    let report = manager.run_for_mins(10);
    assert!(report.total_cost_dollars > 0.0);
    assert_eq!(report.arrival_trace.len(), 600);
}
