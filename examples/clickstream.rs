// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! The paper's headline scenario end-to-end: a click-stream data
//! analytics flow (Fig. 1) under a realistic day/night workload with a
//! lunchtime flash crowd, managed holistically by Flower.
//!
//! Demonstrates: workload dependency analysis on the collected logs
//! (§3.1, the Fig. 2 / Eq. 2 reproduction) and the elasticity episode the
//! controllers produce.
//!
//! ```text
//! cargo run --release --example clickstream
//! ```

use flower_core::dashboard::{Dashboard, Panel};
use flower_core::dependency::DependencyAnalyzer;
use flower_core::flow::Layer;
use flower_core::prelude::*;
use flower_sim::SimRng;
use flower_sim::SimTime;
use flower_workload::{CompositeProcess, DiurnalRate, FlashCrowd, NoisyRate};

fn main() {
    // A compressed diurnal cycle with a flash crowd 40 minutes in, plus
    // 10% multiplicative noise — the kind of "real website traffic" the
    // demo emulates with its EC2 click generators.
    let process = NoisyRate::new(
        Box::new(CompositeProcess::sum(vec![
            Box::new(DiurnalRate::new(
                1_800.0,
                1_200.0,
                SimDuration::from_hours(2),
                SimDuration::ZERO,
            )),
            Box::new(FlashCrowd::new(
                0.0,
                2_500.0,
                SimTime::from_mins(40),
                SimDuration::from_mins(5),
                SimDuration::from_mins(8),
            )),
        ])),
        0.10,
        SimRng::seed(99),
    );

    let flow = FlowBuilder::new("clickstream-analytics")
        .ingestion(Platform::kinesis("clicks", 3))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 150.0))
        .build()
        .expect("valid flow");

    let mut manager = ElasticityManager::builder(flow)
        .workload(Workload::custom(Box::new(process)))
        .monitoring_period(SimDuration::from_secs(30))
        .seed(13)
        .build()
        .expect("workload attached above");

    println!("running 2 simulated hours of click-stream analytics...");
    let report = manager.run_for_mins(120);

    // --- The elasticity episode, as sparkline dashboards.
    let dashboard = Dashboard::new()
        .panel(Panel::new(
            "arrival rate (records/s)",
            report.arrival_trace.clone(),
        ))
        .panel(
            Panel::new(
                "ingestion utilization (%)",
                report.measurements(Layer::INGESTION).to_vec(),
            )
            .with_reference(70.0),
        )
        .panel(Panel::new(
            "shards",
            report.actuators(Layer::INGESTION).to_vec(),
        ))
        .panel(
            Panel::new(
                "analytics CPU (%)",
                report.measurements(Layer::ANALYTICS).to_vec(),
            )
            .with_reference(60.0),
        )
        .panel(Panel::new(
            "VMs",
            report.actuators(Layer::ANALYTICS).to_vec(),
        ))
        .panel(
            Panel::new(
                "storage write utilization (%)",
                report.measurements(Layer::STORAGE).to_vec(),
            )
            .with_reference(70.0),
        )
        .panel(Panel::new(
            "write capacity units",
            report.actuators(Layer::STORAGE).to_vec(),
        ));
    println!("\n{}", dashboard.render(100));

    println!(
        "cost ${:.4} | loss {:.2}% | actions {} | dropped tuples {}",
        report.total_cost_dollars,
        report.ingest_loss_rate() * 100.0,
        report.total_actions(),
        report.dropped_tuples,
    );

    // --- Dependency analysis on the logs this episode produced (§3.1).
    println!("\nworkload dependency analysis over the episode:");
    let analyzer = DependencyAnalyzer::for_clickstream("clicks", "counter", "aggregates");
    match analyzer.dependencies(manager.engine().metrics(), SimTime::ZERO, manager.now()) {
        Ok(deps) if deps.is_empty() => println!("  (no strong dependencies found)"),
        Ok(deps) => {
            for d in deps {
                println!("  {}", d.equation());
            }
        }
        Err(e) => println!("  analysis failed: {e}"),
    }
}
