// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Cross-Platform Monitoring (paper §3.4, Figs. 5–6): the
//! "all-in-one-place visualizer" — one consolidated view over Kinesis-,
//! Storm- and DynamoDB-like services, refreshed live while the flow runs.
//!
//! ```text
//! cargo run --release --example dashboard
//! ```

use flower_core::dashboard::{Dashboard, Panel};
use flower_core::flow::Layer;
use flower_core::monitor::CrossPlatformMonitor;
use flower_core::prelude::*;

fn main() {
    let flow = FlowBuilder::new("clickstream-analytics")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .build()
        .expect("valid flow");

    let mut manager = ElasticityManager::builder(flow)
        .workload(Workload::diurnal(1_800.0, 1_400.0))
        .seed(31)
        .build()
        .expect("workload attached above");

    let mut monitor = CrossPlatformMonitor::for_clickstream("clicks", "counter", "aggregates");

    // Simulate a live session: advance 15 minutes at a time and re-render
    // the consolidated view, as the demo's audience would watch it.
    for round in 1..=4 {
        let report = manager.run_for_mins(15);
        println!("\n──────── monitoring refresh #{round} ────────");
        for t in monitor.observe(manager.engine().metrics(), manager.now()) {
            println!("alarm transition: {} {} -> {}", t.alarm, t.from, t.to);
        }
        let snapshot = monitor.snapshot(
            manager.engine().metrics(),
            manager.now(),
            SimDuration::from_mins(5),
        );
        print!("{}", snapshot.to_table_with_alarms(monitor.alarms()));

        // Controller performance monitor (Fig. 6): measurement vs
        // setpoint per layer.
        let charts = Dashboard::new()
            .panel(
                Panel::new(
                    "ingestion utilization (%)",
                    report.measurements(Layer::INGESTION).to_vec(),
                )
                .with_reference(70.0),
            )
            .panel(
                Panel::new(
                    "analytics CPU (%)",
                    report.measurements(Layer::ANALYTICS).to_vec(),
                )
                .with_reference(60.0),
            )
            .panel(
                Panel::new(
                    "storage write utilization (%)",
                    report.measurements(Layer::STORAGE).to_vec(),
                )
                .with_reference(70.0),
            );
        println!("{}", charts.render(80));
    }

    println!(
        "session totals: ${:.4} spent",
        manager.engine().billing().total()
    );
}
