// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Quickstart: build the paper's click-stream flow, attach Flower's
//! adaptive controllers, run ten simulated minutes, and print what
//! happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flower_core::flow::Layer;
use flower_core::prelude::*;

fn main() {
    // Step 1 — Flow Builder (paper §4, step 1): drag-and-drop as code.
    let flow = FlowBuilder::new("clickstream-analytics")
        .ingestion(Platform::kinesis("clicks", 2))
        .analytics(Platform::storm("counter", 2))
        .storage(Platform::dynamo("aggregates", 100.0))
        .build()
        .expect("valid flow");
    println!("flow '{}' built:", flow.name);
    for layer in Layer::ALL {
        let platform = flow.platform(layer).expect("paper layers are present");
        println!("  {layer:<10} -> {}", platform.name());
    }

    // Step 2 — Configuration wizard: defaults are the paper's adaptive
    // controller on every layer, 30 s monitoring period.
    let mut manager = ElasticityManager::builder(flow)
        .workload(Workload::diurnal(1_500.0, 1_200.0))
        .seed(7)
        .build()
        .expect("workload attached above");

    // Step 3 — run and observe.
    let report = manager.run_for_mins(10);

    println!("\nafter 10 simulated minutes:");
    println!("  offered records : {}", report.offered_records);
    println!("  accepted records: {}", report.accepted_records);
    println!(
        "  ingest loss rate: {:.2}%",
        report.ingest_loss_rate() * 100.0
    );
    println!("  scaling actions : {}", report.total_actions());
    println!("  total cost      : ${:.4}", report.total_cost_dollars);

    for layer in Layer::ALL {
        let (_, units) = report.actuators(layer).last().copied().unwrap();
        println!("  final {layer:<10}: {units:.0} {}", layer.resource_unit());
    }
}
