// Test target: unwrap/expect is deliberate here (an example fails loud).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! A fourth layer beyond the paper: a cache tier on the storage read
//! path, driven end-to-end through the same registry machinery as the
//! paper's three layers — its own capacity unit (cache nodes), its own
//! 2017 price, its own adaptive control loop, a structural dependency
//! edge to the storage layer, and a genome slot in the NSGA-II share
//! analysis. Nothing in the elasticity pipeline is special-cased.
//!
//! ```text
//! cargo run --release --example cache_tier [trace_out.jsonl]
//! ```
//!
//! With an output path the full `flower-trace/v1` JSONL document is
//! written there; CI runs this twice (`FLOWER_THREADS=1` and `=8`) and
//! byte-diffs the two files to prove the four-layer episode is as
//! deterministic as the three-layer one.

use flower_cloud::{MetricId, PriceList, ReadWorkloadConfig};
use flower_core::flow::{cached_clickstream_flow, Layer};
use flower_core::prelude::*;
use flower_core::share::Constraint;
use flower_nsga2::Nsga2Config;
use flower_obs::Recorder;
use flower_sim::SimTime;

fn main() {
    let out_path = std::env::args().nth(1);
    // Worker count for the share analysis fan-out; the trace must be
    // byte-identical whatever this is.
    let workers: Option<usize> = std::env::var("FLOWER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok());

    let flow = cached_clickstream_flow();
    println!("flow '{}' ({} layers):", flow.name, flow.layers().len());
    for layer in flow.layers() {
        let platform = flow
            .platform(layer)
            .expect("layers() lists deployed layers");
        println!(
            "  {:<10} -> {:<14} scaled in {}",
            layer.label(),
            platform.name(),
            layer.resource_unit()
        );
    }

    // The share problem is the paper's worked example *plus* one open
    // registry extension: a genome slot for cache nodes at the 2017
    // ElastiCache price, coupled to storage by a structural constraint
    // (at least one cache node per 1000 provisioned write units, so the
    // hot set keeps up with the table it fronts).
    let prices = PriceList::default();
    let problem = ShareProblem::worked_example(1.0)
        .with_layer(Layer::CACHE, prices.cache_node_hour, 20.0)
        .with_constraint(Constraint::ratio(0.001, Layer::STORAGE, 1.0, Layer::CACHE));

    let replanner = Replanner::for_clickstream(
        ReplanConfig {
            budget: 1.0,
            cadence: SimDuration::from_mins(15),
            analysis_window: SimDuration::from_mins(15),
            selection: PlanSelection::Balanced,
            dependency_band: 0.5,
            nsga2: Nsga2Config {
                population: 32,
                generations: 24,
                seed: 9,
                ..Default::default()
            },
            workers,
            warm_start: false,
            warm_generations: 12,
        },
        "clicks",
        "counter",
        "aggregates",
        problem,
    )
    .with_resource_metric(
        Layer::CACHE,
        MetricId::new(
            flower_cloud::engine::metric_names::NS_CACHE,
            flower_cloud::engine::metric_names::CACHE_NODES,
            "hot-aggregates",
        ),
    );

    // A flash crowd on the write path plus a read workload tracking site
    // traffic: the reads are what the cache tier absorbs.
    let mut manager = ElasticityManager::builder(flow)
        .workload(Workload::flash_crowd(
            600.0,
            9_000.0,
            SimTime::from_mins(10),
        ))
        .read_workload(ReadWorkloadConfig {
            base_rate: 150.0,
            per_record: 0.5,
            ..Default::default()
        })
        .replanner(replanner)
        .recorder(Recorder::with_capacity(65_536))
        .seed(5)
        .build()
        .expect("workload attached above");
    let report = manager.run_for_mins(45);

    println!("\nafter 45 simulated minutes (15x flash crowd at t=10min):");
    println!("  offered records : {}", report.offered_records);
    println!("  accepted records: {}", report.accepted_records);
    println!("  total cost      : ${:.4}", report.total_cost_dollars);
    for (layer, actions) in report.layers.iter().zip(&report.scaling_actions) {
        let units = report
            .actuators(*layer)
            .last()
            .map_or(f64::NAN, |&(_, u)| u);
        println!(
            "  {:<10} final {units:>7.0} {:<21} ({actions} scaling actions)",
            layer.label(),
            layer.resource_unit()
        );
    }

    let trace = manager.recorder().to_jsonl();
    println!(
        "\ntrace: {} events, {} bytes",
        trace.lines().count(),
        trace.len()
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &trace).expect("trace output path must be writable");
        println!("trace written to {path}");
    }
}
