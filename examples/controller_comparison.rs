// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Resource Provisioning (paper §3.3): pit the paper's adaptive
//! gain-memory controller against the fixed-gain [12], quasi-adaptive
//! [14], and rule-based [1] baselines on the same step disturbance, and
//! print the response metrics the comparison is scored on.
//!
//! ```text
//! cargo run --release --example controller_comparison
//! ```

use flower_core::config::ControllerSpec;
use flower_core::flow::{clickstream_flow, Layer};
use flower_core::prelude::*;
use flower_sim::SimTime;

fn main() {
    let specs = [
        ControllerSpec::adaptive(60.0),
        ControllerSpec::fixed_gain(60.0),
        ControllerSpec::quasi_adaptive(60.0),
        ControllerSpec::rule_based(60.0),
    ];

    println!("step disturbance: 600 -> 3,600 records/s at t = 10 min; 40 min episode\n");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "controller", "settle(s)", "IAE", "violation%", "actions", "thr.ingest", "cost $"
    );

    for spec in specs {
        let name = spec.name().to_owned();
        let mut manager = ElasticityManager::builder(clickstream_flow())
            .workload(Workload::step(600.0, 3_600.0, SimTime::from_mins(10)))
            .all_controllers(spec)
            .seed(5)
            .build()
            .expect("workload attached above");
        let report = manager.run_for_mins(40);

        // Score the analytics layer against its 60% CPU setpoint ± 15.
        let metrics = report.response_metrics(Layer::ANALYTICS, 60.0, 15.0);
        let settle = metrics
            .settling_time
            .map(|t| format!("{}", t.as_secs()))
            .unwrap_or_else(|| "never".to_owned());
        println!(
            "{:<16} {:>10} {:>10.0} {:>12.1} {:>10} {:>10} {:>10.4}",
            name,
            settle,
            metrics.integral_abs_error,
            metrics.violation_rate * 100.0,
            report.total_actions(),
            report.throttled_ingest,
            report.total_cost_dollars,
        );
    }

    println!(
        "\nthe adaptive controller's growing gain reaches the new operating\n\
         point in fewer monitoring periods than the fixed-gain baseline, and\n\
         its gain memory re-applies learned aggressiveness when the regime\n\
         recurs — the paper's 'rapid elasticity' claim in reproducible form."
    );
}
