// Test target: unwrap/expect and exact float comparison are deliberate
// here (determinism assertions compare results bit-for-bit).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
//! Resource Share Analysis (paper §3.2, Fig. 4): given an hourly budget
//! and the worked example's dependency constraints, find the Pareto-
//! optimal resource shares for the three layers with NSGA-II and print
//! them the way the paper's Fig. 4 lists its six solutions.
//!
//! ```text
//! cargo run --release --example pareto_planner [budget_dollars_per_hour]
//! ```

use flower_core::prelude::*;
use flower_core::share::ShareProblem;
use flower_nsga2::Nsga2Config;

fn main() {
    let budget: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    println!("budget: ${budget:.2}/hour");
    println!("constraints (the paper's worked example):");
    let problem = ShareProblem::worked_example(budget);
    for c in &problem.constraints {
        println!("  {}", c.label);
    }
    print!("prices:");
    for (layer, price) in problem.layers.iter().zip(&problem.unit_prices) {
        print!(" {} ${price}/h,", layer.resource());
    }
    println!("\n");

    let analyzer = ShareAnalyzer::new(problem).with_config(Nsga2Config {
        population: 100,
        generations: 250,
        seed: 2017,
        ..Default::default()
    });

    match analyzer.solve() {
        Ok(plans) => {
            println!(
                "{} Pareto-optimal provisioning plans (integer resolution):",
                plans.len()
            );
            println!(
                "{:>4} {:>8} {:>6} {:>8} {:>10}",
                "#", "shards", "VMs", "WCU", "$/hour"
            );
            for (i, p) in plans.iter().enumerate() {
                println!(
                    "{:>4} {:>8.0} {:>6.0} {:>8.0} {:>10.4}",
                    i + 1,
                    p.shards(),
                    p.vms(),
                    p.wcu(),
                    p.hourly_cost
                );
            }
            println!(
                "\npick one manually, or let Flower pick (the paper: 'one solution\n\
                 … must be identified either manually by the user or randomly by\n\
                 the system')."
            );
        }
        Err(e) => println!("no plan: {e}"),
    }
}
